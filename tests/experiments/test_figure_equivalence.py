"""Orchestrator ⟷ direct-path equivalence for every ported figure.

Acceptance criterion for the orchestration subsystem: running a figure
through its registered sweep produces *identical* simulated results to
calling the ``repro.bench.figures`` function directly — same rows, same
exact (unrounded) times, same extra statistics, after normalizing both
through the JSON export (the orchestrator's results legitimately
round-trip through JSON, which is exact for IEEE doubles).

The cheap figures compare at their paper-default grids; the heavy ones
(fig8/10/12 and the occupancy sweep) compare on reduced grids through
the same parameterized factories, which exercises the identical runner
and assembler code paths at a fraction of the wall-clock.
"""

import json

import pytest

from repro.bench import figures as direct
from repro.experiments import figures as orch
from repro.experiments import run_sweep

#: Reduced grids for the heavy figures (same shapes the direct functions
#: accept; the paper-default grids stay registered for the CLI).
SMALL_FIG8 = ((512, 64), (1024, 256))
SMALL_FIG12 = ((256, 64), (1024, 256))
SMALL_FIG9 = ((8192, 8192), (65536, 16384))
SMALL_FIG10 = ((2048, 4096, 8192), (4096, 4096, 14336))
SMALL_FRACTIONS = (0.25, 0.75, 0.875)


def _normalize(figure_result):
    return json.loads(json.dumps(figure_result.to_json_dict(),
                                 sort_keys=True))


def _assert_equivalent(direct_result, sweep):
    orchestrated = run_sweep(sweep).figure()
    assert _normalize(orchestrated) == _normalize(direct_result)


def test_table1_equivalence():
    _assert_equivalent(direct.table1_setup(), orch.table1_sweep(name="eq-t1"))


def test_table2_equivalence():
    _assert_equivalent(direct.table2_setup(), orch.table2_sweep(name="eq-t2"))


def test_fig8_equivalence():
    _assert_equivalent(direct.fig8_embedding_a2a_intranode(SMALL_FIG8),
                       orch.fig8_sweep(SMALL_FIG8, name="eq-f8"))


def test_fig9_equivalence():
    _assert_equivalent(direct.fig9_gemv_allreduce(SMALL_FIG9),
                       orch.fig9_sweep(SMALL_FIG9, name="eq-f9"))


def test_fig10_equivalence():
    _assert_equivalent(direct.fig10_gemm_a2a(SMALL_FIG10),
                       orch.fig10_sweep(SMALL_FIG10, name="eq-f10"))


def test_fig11_equivalence():
    _assert_equivalent(direct.fig11_wg_timeline(),
                       orch.fig11_sweep(name="eq-f11"))


def test_fig12_equivalence():
    _assert_equivalent(direct.fig12_embedding_a2a_internode(SMALL_FIG12),
                       orch.fig12_sweep(SMALL_FIG12, name="eq-f12"))


def test_fig13_equivalence():
    _assert_equivalent(
        direct.fig13_occupancy_sweep(fractions=SMALL_FRACTIONS),
        orch.fig13_sweep(fractions=SMALL_FRACTIONS, name="eq-f13"))


@pytest.mark.slow
def test_fig14_equivalence():
    _assert_equivalent(direct.fig14_scheduling_skew(),
                       orch.fig14_sweep(name="eq-f14"))


def test_fig15_equivalence():
    _assert_equivalent(direct.fig15_scaleout(),
                       orch.fig15_sweep(name="eq-f15"))


def test_fig15_hidden_extra_scenario_when_128_absent():
    """Fig. 15's headline stats come from 128 nodes even when the row grid
    omits it — via a hidden scenario, exactly like the direct function's
    separate ``run_dlrm_scaleout(128)`` call."""
    _assert_equivalent(direct.fig15_scaleout(node_counts=(16, 32)),
                       orch.fig15_sweep(node_counts=(16, 32), name="eq-f15h"))


def test_equivalence_survives_the_cache(tmp_path):
    """Cache-served results assemble to the same figure as fresh ones."""
    from repro.experiments import ResultStore
    sweep = orch.fig9_sweep(SMALL_FIG9, name="eq-f9-cache")
    store = ResultStore(tmp_path)
    fresh = run_sweep(sweep, store=store).figure()
    cached_run = run_sweep(sweep, store=store)
    assert cached_run.executed == 0
    assert _normalize(cached_run.figure()) == _normalize(fresh)
    assert _normalize(fresh) == _normalize(
        direct.fig9_gemv_allreduce(SMALL_FIG9))
