"""Cross-hardware sweeps: determinism, mi210 equivalence, canonical keys."""

import json

from repro.bench.figures import fig9_gemv_allreduce
from repro.experiments import figures as orch
from repro.experiments import run_sweep
from repro.fused.base import OpHarness
from repro.fused.gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
)
from repro.hw import get_platform

SMALL_GRID = ((8192, 8192),)


def _normalize(figure_result):
    return json.loads(json.dumps(figure_result.to_json_dict(),
                                 sort_keys=True))


def test_xhw_mi210_rows_match_direct_figure_path():
    """The mi210 slice of a cross-hardware sweep must be byte-identical to
    the seed's direct figure path (platform is a no-op at the default)."""
    direct = fig9_gemv_allreduce(grid=SMALL_GRID)
    sweep = orch.xhw_gemv_allreduce_sweep(grid=SMALL_GRID,
                                          platforms=("mi210",),
                                          name="eq-xhw-mi210")
    fig = run_sweep(sweep).figure()
    [direct_row] = direct.rows
    [xhw_row] = fig.rows
    assert xhw_row.fused_time == direct_row.fused_time
    assert xhw_row.baseline_time == direct_row.baseline_time


def test_op_harness_platform_mi210_is_bit_identical_to_default():
    cfg = GemvAllReduceConfig(m=8192, n_per_gpu=2048, functional=False)

    def run_pair(**kw):
        h1 = OpHarness(num_nodes=1, gpus_per_node=4, **kw)
        fused = h1.run(FusedGemvAllReduce(h1, cfg)).elapsed
        h2 = OpHarness(num_nodes=1, gpus_per_node=4, **kw)
        base = h2.run(BaselineGemvAllReduce(h2, cfg)).elapsed
        return fused, base

    assert run_pair() == run_pair(platform="mi210")
    assert run_pair() == run_pair(platform=get_platform("mi210"))


def test_xhw_sweep_is_deterministic_and_reports_per_platform_speedups():
    sweep = orch.xhw_gemv_allreduce_sweep(grid=SMALL_GRID,
                                          platforms=("mi210", "h100"),
                                          name="eq-xhw-det")
    first = _normalize(run_sweep(sweep).figure())
    second = _normalize(run_sweep(sweep).figure())
    assert first == second
    speedups = first["extra"]["speedup_by_platform"]
    assert set(speedups) == {"mi210", "h100"}
    assert all(v > 0 for v in speedups.values())
    assert [r["label"] for r in first["rows"]] == ["mi210 8k|2k",
                                                   "h100 8k|2k"]


def test_platforms_actually_change_results():
    """The hardware axis must matter: a faster device shifts the times."""
    sweep = orch.xhw_gemv_allreduce_sweep(grid=SMALL_GRID,
                                          platforms=("mi210", "mi300x"),
                                          name="eq-xhw-differs")
    fig = run_sweep(sweep).figure()
    by_label = {r.label: r for r in fig.rows}
    assert by_label["mi300x 8k|2k"].fused_time != \
        by_label["mi210 8k|2k"].fused_time


def test_platform_param_is_canonical_in_scenario_keys():
    """None, the name, and the Platform instance must hash identically."""
    keys = [
        orch.fig9_sweep(SMALL_GRID, name="k", platform=p).scenarios[0].key()
        for p in (None, "mi210", get_platform("mi210"),
                  get_platform("mi210").to_params())
    ]
    assert len(set(keys)) == 1
    # A different platform changes the key (it is part of the store key).
    other = orch.fig9_sweep(SMALL_GRID, name="k",
                            platform="h100").scenarios[0].key()
    assert other != keys[0]


def test_registered_defaults_carry_the_platform_field():
    from repro.experiments.registry import get_sweep
    for name in ("fig8", "fig13", "fig15", "smoke", "xhw_scaleout"):
        for spec in get_sweep(name).scenarios:
            assert spec.params["platform"] == "mi210" or \
                name.startswith("xhw")


def test_xhw_scaleout_platform_changes_iteration_time():
    from repro.astra import run_dlrm_scaleout
    mi210 = run_dlrm_scaleout(16)
    assert run_dlrm_scaleout(16, platform="mi210").fused_time == \
        mi210.fused_time
    assert run_dlrm_scaleout(16, platform="mi300x").fused_time != \
        mi210.fused_time


def test_fig13_and_slice_ablation_adapt_to_platform_occupancy_ceiling():
    """The occupancy knobs must clip to each platform's derived fused
    maximum instead of assuming the MI210's 0.875."""
    # Default (mi210) stays the paper grid, bit for bit.
    default = orch.fig13_sweep(name="occ-default")
    assert [s.params["occupancy_of_baseline"] for s in default.scenarios] \
        == [0.25, 0.375, 0.5, 0.625, 0.75, 0.875]
    # H100-class tops out at 0.75 -> the 0.875 point is clipped.
    h100 = orch.fig13_sweep(name="occ-h100", platform="h100")
    fracs = [s.params["occupancy_of_baseline"] for s in h100.scenarios]
    assert max(fracs) == 0.75 and 0.875 not in fracs
    # Slice ablation pins to the platform's maximum.
    abl = orch.ablation_slice_size_sweep(name="sl-h100", platform="h100")
    assert all(s.params["occupancy_of_baseline"] == 0.75
               for s in abl.scenarios)
    abl_default = orch.ablation_slice_size_sweep(name="sl-default")
    assert all(s.params["occupancy_of_baseline"] == 0.875
               for s in abl_default.scenarios)


def test_fig13_runs_on_h100_without_crashing():
    from repro.bench.figures import fig13_occupancy_sweep
    fig = fig13_occupancy_sweep(batch=256, tables=16, platform="h100")
    assert fig.rows and max(float(r.label.rstrip("%")) for r in fig.rows) \
        == 75.0
