"""CLI tests for ``repro trace`` / ``repro stats`` and the golden export.

The golden file (``data/golden_trace_smoke.json``) pins the byte-exact
Chrome trace of the ``trace-smoke`` sweep: any nondeterminism in the
simulator, the trace recorder, or the exporter shows up as a byte diff
here (and in the CI step that repeats this comparison from a fresh
process).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.cli import main
from repro.obs.chrome import validate_chrome_trace
from repro.obs.metrics import reset_metrics

GOLDEN = Path(__file__).parent / "data" / "golden_trace_smoke.json"


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


def test_trace_export_matches_golden_bytes(tmp_path):
    out = tmp_path / "trace.json"
    assert main(["trace", "trace-smoke", "--quiet",
                 "--out", str(out)]) == 0
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_golden_trace_is_valid_chrome_trace():
    data = json.loads(GOLDEN.read_text())
    n = validate_chrome_trace(data)
    assert n > 0
    names = {e["args"]["name"] for e in data["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"trace-smoke:trace 64|4/run0"}


def test_trace_scenario_filter(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "smoke", "--quiet", "--scenario", "8k|2k",
                 "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    validate_chrome_trace(data)
    names = {e["args"]["name"] for e in data["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert all(n.startswith("smoke:8k|2k/") for n in names)


def test_trace_unknown_scenario_fails(tmp_path, capsys):
    assert main(["trace", "smoke", "--quiet", "--scenario", "nope",
                 "--out", str(tmp_path / "t.json")]) == 1
    assert "no scenario" in capsys.readouterr().err


def test_trace_analytic_only_sweep_fails(tmp_path, capsys):
    # dse-smoke is pinned to the analytic backend: no simulated cluster,
    # nothing to trace — the command must say so, not write an empty file.
    out = tmp_path / "t.json"
    assert main(["trace", "dse-smoke", "--quiet", "--out", str(out)]) == 1
    assert "nothing traced" in capsys.readouterr().err
    assert not out.exists()


def test_trace_host_spans_adds_host_process(tmp_path):
    out = tmp_path / "trace.json"
    assert main(["trace", "trace-smoke", "--quiet", "--host-spans",
                 "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    validate_chrome_trace(data)
    names = {e["args"]["name"] for e in data["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert "host" in names


def test_stats_reports_counters(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["stats", "smoke", "--quiet", "--cache", str(cache)]) == 0
    captured = capsys.readouterr()
    assert "0 cached, 3 executed" in captured.err
    assert "sim.events_processed" in captured.out
    assert "sweep.cache_misses" in captured.out
    # Cached second run flips the counters.
    assert main(["stats", "smoke", "--quiet", "--cache", str(cache)]) == 0
    captured = capsys.readouterr()
    assert "3 cached, 0 executed" in captured.err
    assert "sweep.cache_hits" in captured.out


def test_stats_json_snapshot(tmp_path, capsys):
    assert main(["stats", "smoke", "--quiet", "--no-cache",
                 "--cache", str(tmp_path / "unused"), "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["counters"]["sweep.cache_misses"] == 3
    assert snap["gauges"]["sim.heap_peak"] >= 1
    assert "sweep.serial_wall_s" in snap["timers"]


def test_stats_leaves_metrics_disabled(tmp_path, capsys):
    from repro.obs.metrics import NULL_METRICS, get_metrics
    assert main(["stats", "smoke", "--quiet", "--no-cache",
                 "--cache", str(tmp_path / "unused")]) == 0
    capsys.readouterr()
    assert get_metrics() is NULL_METRICS
