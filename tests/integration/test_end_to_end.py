"""Cross-module integration tests: full pipelines over the whole stack."""

import numpy as np
import pytest

from repro.fused import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
    OpHarness,
)
from repro.models import (
    Dlrm,
    MoeLayer,
    MoeLayerConfig,
    TensorParallelMlp,
    TransformerMlpConfig,
    categorical_indices,
    dense_features,
    token_batch,
)
from repro.ops import interaction, sigmoid


def test_distributed_dlrm_matches_single_device():
    """The fused embedding+A2A stage slots into a real DLRM forward pass
    and reproduces the single-device model's predictions exactly."""
    world, t_per, dim, pooling, rows, batch = 4, 2, 8, 4, 40, 32
    model = Dlrm.create(dense_dim=7, embedding_dim=dim,
                        num_tables=world * t_per, rows_per_table=rows,
                        bottom_sizes=[16], top_sizes=[16],
                        rng=np.random.default_rng(21))
    dense = dense_features(batch, 7, seed=22)
    indices = categorical_indices(batch, world * t_per, pooling, rows,
                                  seed=23)
    reference = model(dense, indices)

    cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=t_per,
                             dim=dim, pooling=pooling, rows_per_table=rows,
                             slice_vectors=4, functional=True)
    harness = OpHarness(num_nodes=1, gpus_per_node=world)
    op = FusedEmbeddingAllToAll(harness, cfg)
    for r in range(world):
        for t in range(t_per):
            op.tables[r][t] = model.tables[r * t_per + t]
            op.indices[r][t] = indices[r * t_per + t]
    result = harness.run(op)

    local = batch // world
    bottom_out = model.bottom_mlp(dense)
    preds = np.empty(batch, np.float32)
    for rank in range(world):
        sl = slice(rank * local, (rank + 1) * local)
        feats = interaction(bottom_out[sl], result.outputs[rank])
        preds[sl] = sigmoid(model.top_mlp(feats)[:, 0])
    np.testing.assert_allclose(preds, reference, rtol=1e-4, atol=1e-6)


def test_transformer_decode_through_fused_gemv():
    """Tensor-parallel decode: the fused GEMV+AllReduce reproduces the
    block's second-layer output when fed the per-rank activations."""
    cfg = TransformerMlpConfig(hidden=128, ffn_multiplier=2,
                               tensor_parallel=4)
    mlp = TensorParallelMlp.create(cfg, rng=np.random.default_rng(31))
    x = dense_features(1, cfg.hidden, seed=32)

    gcfg = GemvAllReduceConfig(m=cfg.hidden,
                               n_per_gpu=cfg.shard_columns(),
                               tile_rows=16, functional=True)
    harness = OpHarness(num_nodes=1, gpus_per_node=4)
    op = FusedGemvAllReduce(harness, gcfg)
    from repro.ops import gelu

    for r in range(4):
        h_r = gelu(x @ mlp.w0_shards[r])[0]          # (ffn/world,)
        op.mats[r] = np.ascontiguousarray(mlp.w1_shards[r].T)  # (hidden, n)
        op.vecs[r] = h_r
    result = harness.run(op)
    reference = mlp(x)[0]
    for r in range(4):
        np.testing.assert_allclose(result.outputs[r], reference,
                                   rtol=1e-3, atol=1e-5)


def test_moe_reference_consistent_with_gemm_config():
    """MoE gating + the per-expert GEMM config agree on problem shapes."""
    cfg = MoeLayerConfig(tokens=128, model_dim=32, ffn_dim=64,
                         num_experts=4, top_k=2)
    layer = MoeLayer.create(cfg, rng=np.random.default_rng(41))
    x, _ = token_batch(cfg.tokens, cfg.model_dim, seed=42)
    counts = layer.dispatch_counts(x)
    # Uniform-load assumption (the paper's): expert tokens ~ tokens*k/E.
    expected = cfg.tokens * cfg.top_k / cfg.num_experts
    gcfg = layer.gemm_config(tokens_per_expert=int(expected), block_m=8,
                             block_n=16)
    assert gcfg.model_dim == cfg.model_dim
    assert gcfg.ffn_dim == cfg.ffn_dim
    assert counts.sum() == cfg.tokens * cfg.top_k


def test_fused_wins_consistently_across_seeds():
    """Timing is workload-shape-dependent, not data-dependent: different
    seeds give identical simulated times."""
    times = []
    for seed in (0, 1, 2):
        cfg = EmbeddingA2AConfig(global_batch=64, tables_per_gpu=4, dim=16,
                                 pooling=5, rows_per_table=50,
                                 slice_vectors=8, seed=seed)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        times.append(h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed)
    assert times[0] == times[1] == times[2]


def test_simulation_is_deterministic():
    """Bit-identical repeat runs (event ordering, flags, transfers)."""
    def run_once():
        cfg = EmbeddingA2AConfig(global_batch=128, tables_per_gpu=8,
                                 dim=16, pooling=5, rows_per_table=50,
                                 slice_vectors=8)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        res = h.run(FusedEmbeddingAllToAll(h, cfg))
        return res.elapsed, [o.copy() for o in res.outputs]

    t1, o1 = run_once()
    t2, o2 = run_once()
    assert t1 == t2
    for a, b in zip(o1, o2):
        np.testing.assert_array_equal(a, b)


def test_all_three_operators_beat_baseline_on_one_cluster_shape():
    """Sanity sweep of the paper's three headline results."""
    from repro.fused import (
        BaselineGemmAllToAll,
        BaselineGemvAllReduce,
        FusedGemmAllToAll,
        GemmA2AConfig,
    )

    norms = {}
    cfg_e = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=64,
                               functional=False)
    h1 = OpHarness(2, 1)
    h2 = OpHarness(2, 1)
    norms["embedding"] = (h1.run(FusedEmbeddingAllToAll(h1, cfg_e)).elapsed
                          / h2.run(BaselineEmbeddingAllToAll(h2, cfg_e))
                          .elapsed)
    cfg_v = GemvAllReduceConfig(m=16384, n_per_gpu=4096, functional=False)
    h3 = OpHarness(1, 4)
    h4 = OpHarness(1, 4)
    norms["gemv"] = (h3.run(FusedGemvAllReduce(h3, cfg_v)).elapsed
                     / h4.run(BaselineGemvAllReduce(h4, cfg_v)).elapsed)
    cfg_g = GemmA2AConfig(tokens=2048, model_dim=4096, ffn_dim=8192,
                          functional=False)
    h5 = OpHarness(1, 4)
    h6 = OpHarness(1, 4)
    norms["gemm"] = (h5.run(FusedGemmAllToAll(h5, cfg_g)).elapsed
                     / h6.run(BaselineGemmAllToAll(h6, cfg_g)).elapsed)
    assert all(v < 1.0 for v in norms.values()), norms
    # Relative ordering the paper reports: embedding wins most, GEMM least.
    assert norms["embedding"] < norms["gemv"] < norms["gemm"]
