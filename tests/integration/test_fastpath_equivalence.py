"""Fast path vs. per-task slow path: bit-identical simulated behaviour.

The fast-path simulation core (run-length task batching, memoized cost
models, zero-overhead tracing) must change *host* time only.  These tests
run the same operators with ``REPRO_SIM_FASTPATH`` on and off across a
seeded randomized grid of configurations and require the observable outputs
— final ``sim.now``, per-rank elapsed/end times, and figure-level
``Row.normalized`` — to be equal to the last ulp (``==``, no tolerance).
"""

import random

import numpy as np

from repro.bench.harness import Row
from repro.fused.base import OpHarness, fused_kernel_resources
from repro.fused.embedding_alltoall import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
)
from repro.fused.gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
)
from repro.hw.specs import MI210
from repro.kernels import PersistentKernel, make_uniform_tasks
from repro.hw.gpu import Gpu, WgCost
from repro.sim import Simulator


def _run_pair(fused_factory, baseline_factory, num_nodes, gpus_per_node):
    """One fused/baseline pair on fresh clusters; all observables."""
    h1 = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    fused = h1.run(fused_factory(h1))
    h2 = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    base = h2.run(baseline_factory(h2))
    row = Row(label="x", fused_time=fused.elapsed, baseline_time=base.elapsed)
    return {
        "fused_elapsed": fused.elapsed,
        "baseline_elapsed": base.elapsed,
        "normalized": row.normalized,
        "rank_end_times": dict(fused.stats.get("rank_end_times", {})),
        "sim_now": (h1.sim.now, h2.sim.now),
        "outputs": fused.outputs,
    }


def _both_modes(monkeypatch, runner):
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")
    fast = runner()
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    slow = runner()
    return fast, slow


def _assert_identical(fast, slow):
    assert fast["fused_elapsed"] == slow["fused_elapsed"]
    assert fast["baseline_elapsed"] == slow["baseline_elapsed"]
    assert fast["normalized"] == slow["normalized"]
    assert fast["rank_end_times"] == slow["rank_end_times"]
    assert fast["sim_now"] == slow["sim_now"]


def _random_embedding_configs(rng, n):
    cfgs = []
    for _ in range(n):
        world_shape = rng.choice([(1, 4), (2, 1), (2, 2)])
        world = world_shape[0] * world_shape[1]
        slice_vectors = rng.choice([16, 32])
        local = rng.choice([64, 128, 256]) // slice_vectors * slice_vectors
        cfgs.append((EmbeddingA2AConfig(
            global_batch=local * world,
            tables_per_gpu=rng.choice([4, 16, 32]),
            slice_vectors=slice_vectors,
            tasks_per_slice=rng.choice([0, 1, 4]),
            functional=False,
            scheduler=rng.choice(["comm_aware", "oblivious"]),
            zero_copy=rng.choice([True, False]),
        ), world_shape))
    return cfgs


def _random_gemv_configs(rng, n):
    cfgs = []
    for _ in range(n):
        cfgs.append(GemvAllReduceConfig(
            m=rng.choice([1024, 2048, 4096]),
            n_per_gpu=rng.choice([512, 2048]),
            tile_rows=rng.choice([8, 16]),
            functional=False,
            scheduler=rng.choice(["comm_aware", "oblivious"]),
        ))
    return cfgs


def test_embedding_a2a_grid_bit_identical(monkeypatch):
    rng = random.Random(0xE2A)
    for cfg, (nodes, gpn) in _random_embedding_configs(rng, 6):
        fast, slow = _both_modes(monkeypatch, lambda: _run_pair(
            lambda h: FusedEmbeddingAllToAll(h, cfg),
            lambda h: BaselineEmbeddingAllToAll(h, cfg),
            num_nodes=nodes, gpus_per_node=gpn))
        _assert_identical(fast, slow)


def test_gemv_allreduce_grid_bit_identical(monkeypatch):
    rng = random.Random(0x6E3)
    for cfg in _random_gemv_configs(rng, 4):
        fast, slow = _both_modes(monkeypatch, lambda: _run_pair(
            lambda h: FusedGemvAllReduce(h, cfg),
            lambda h: BaselineGemvAllReduce(h, cfg),
            num_nodes=1, gpus_per_node=4))
        _assert_identical(fast, slow)


def test_functional_outputs_bit_identical(monkeypatch):
    cfg = EmbeddingA2AConfig(global_batch=128, tables_per_gpu=4,
                             slice_vectors=16, functional=True)
    fast, slow = _both_modes(monkeypatch, lambda: _run_pair(
        lambda h: FusedEmbeddingAllToAll(h, cfg),
        lambda h: BaselineEmbeddingAllToAll(h, cfg),
        num_nodes=1, gpus_per_node=4))
    _assert_identical(fast, slow)
    for a, b in zip(fast["outputs"], slow["outputs"]):
        np.testing.assert_array_equal(a, b)


def test_uniform_kernel_per_slot_times_bit_identical(monkeypatch):
    """The uniform-kernel fast-forward must reproduce each physical WG's
    greedy (round-robin) share, not just the joint finish: per-slot finish
    times are observable through the epilogue."""
    for n_tasks in (7, 64, 1457, 2912, 3000):
        finishes = {}

        def make_kernel(sim):
            gpu = Gpu(sim, MI210, gpu_id=0)
            tasks = make_uniform_tasks(n_tasks, WgCost(bytes=4096.0))

            def epilogue(slot_ctx):
                finishes.setdefault(mode, []).append(
                    (slot_ctx.slot_id, sim.now))
                return None

            return PersistentKernel(gpu, fused_kernel_resources(), tasks,
                                    epilogue=epilogue)

        results = {}
        for mode, flag in (("fast", "1"), ("slow", "0")):
            monkeypatch.setenv("REPRO_SIM_FASTPATH", flag)
            sim = Simulator()
            kern = make_kernel(sim)
            proc = kern.launch()
            sim.run()
            assert proc.ok
            results[mode] = sim.now
        assert results["fast"] == results["slow"]
        assert finishes["fast"] == finishes["slow"]
