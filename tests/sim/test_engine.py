"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return "done"

    assert sim.run_process(proc(sim)) == "done"
    assert sim.now == 2.5


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run_process(proc(sim)) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)

    sim.run_process(proc(sim))
    assert sim.now == pytest.approx(6.0)


def test_parallel_processes_interleave():
    sim = Simulator()
    log = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(proc(sim, "b", 2.0))
    sim.process(proc(sim, "a", 1.0))
    sim.run()
    assert log == [(1.0, "a"), (2.0, "b")]


def test_same_time_fifo_order():
    """Events at identical times must process in schedule order."""
    sim = Simulator()
    log = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in "abcde":
        sim.process(proc(sim, name))
    sim.run()
    assert log == list("abcde")


def test_process_waits_on_manual_event():
    sim = Simulator()

    def waiter(sim, ev):
        val = yield ev
        return val

    def firer(sim, ev):
        yield sim.timeout(3.0)
        ev.succeed(99)

    ev = sim.event()
    w = sim.process(waiter(sim, ev))
    sim.process(firer(sim, ev))
    sim.run()
    assert w.value == 99
    assert sim.now == 3.0


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_raises_in_process():
    sim = Simulator()

    def proc(sim, ev):
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "caught"

    ev = sim.event()
    ev.fail(ValueError("boom"))
    assert sim.run_process(proc(sim, ev)) == "caught"


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_return_value_propagates():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 7

    def parent(sim):
        val = yield sim.process(child(sim))
        return val * 2

    assert sim.run_process(parent(sim)) == 14


def test_process_exception_propagates_to_parent():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def parent(sim):
        with pytest.raises(RuntimeError, match="child died"):
            yield sim.process(child(sim))
        return "survived"

    assert sim.run_process(parent(sim)) == "survived"


def test_uncaught_process_exception_raises_from_run_process():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    with pytest.raises(KeyError):
        sim.run_process(proc(sim))


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc(sim):
        yield 42

    with pytest.raises(SimulationError, match="non-event"):
        sim.run_process(proc(sim))


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc(sim):
        evs = [sim.timeout(t) for t in (1.0, 3.0, 2.0)]
        yield AllOf(sim, evs)
        return sim.now

    assert sim.run_process(proc(sim)) == 3.0


def test_all_of_empty_is_immediate():
    sim = Simulator()

    def proc(sim):
        yield sim.all_of([])
        return sim.now

    assert sim.run_process(proc(sim)) == 0.0


def test_any_of_waits_for_first():
    sim = Simulator()

    def proc(sim):
        evs = [sim.timeout(t) for t in (5.0, 1.0, 3.0)]
        yield AnyOf(sim, evs)
        return sim.now

    assert sim.run_process(proc(sim)) == 1.0


def test_all_of_collects_values():
    sim = Simulator()

    def proc(sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        got = yield sim.all_of([a, b])
        return sorted(got.values())

    assert sim.run_process(proc(sim)) == ["a", "b"]


def test_timeout_at_absolute_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.5)
        got = yield sim.timeout_at(4.0, value="abs")
        return (sim.now, got)

    assert sim.run_process(proc(sim)) == (4.0, "abs")


def test_timeout_at_past_raises():
    sim = Simulator()
    sim.timeout(2.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.timeout_at(1.0)


def test_all_of_without_values_is_plain_barrier():
    """No component carries a value -> the condition value is an empty
    dict (no per-event collection on the hot path)."""
    sim = Simulator()

    def proc(sim):
        got = yield sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
        return got

    assert sim.run_process(proc(sim)) == {}


def test_any_of_identifies_winner_without_value():
    """AnyOf's result names the winning event even when it carries no
    value (unlike AllOf, whose dict holds no information by fire time)."""
    sim = Simulator()

    def proc(sim):
        slow = sim.timeout(5.0)
        fast = sim.timeout(1.0)
        got = yield sim.any_of([slow, fast])
        return (fast in got, slow in got)

    assert sim.run_process(proc(sim)) == (True, False)


def test_run_until_stops_early():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100.0)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_deadlock_detected_by_run_process():
    sim = Simulator()

    def proc(sim):
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(proc(sim))


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as itr:
            log.append((sim.now, itr.cause))
        return "interrupted"

    def attacker(sim, proc):
        yield sim.timeout(2.0)
        proc.interrupt(cause="stop")

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert v.value == "interrupted"
    assert log == [(2.0, "stop")]


def test_interrupt_completed_process_raises():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_add_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.timeout(1.0, value=5)
    sim.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    assert got == [5]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_many_processes_scale():
    """A few thousand processes run and the clock lands on the max delay."""
    sim = Simulator()
    n = 2000

    def proc(sim, i):
        yield sim.timeout(i * 0.001)

    for i in range(n):
        sim.process(proc(sim, i))
    sim.run()
    assert sim.now == pytest.approx((n - 1) * 0.001)
