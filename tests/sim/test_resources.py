"""Unit tests for resources: semaphore, FIFO channel, fair-share link."""

import pytest

from repro.sim import FairShareLink, FifoChannel, Mailbox, Resource, SimulationError, Simulator


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    sim.run()
    assert r1.processed and r2.processed
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queued == 1


def test_resource_fifo_handoff():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, name, hold):
        yield res.request()
        order.append(("got", name, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(user(sim, "a", 2.0))
    sim.process(user(sim, "b", 1.0))
    sim.process(user(sim, "c", 1.0))
    sim.run()
    assert order == [("got", "a", 0.0), ("got", "b", 2.0), ("got", "c", 3.0)]


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_acquire_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim):
        yield from res.acquire()
        yield sim.timeout(1.0)
        res.release()
        return sim.now

    assert sim.run_process(user(sim)) == 1.0


# ---------------------------------------------------------------------------
# FifoChannel
# ---------------------------------------------------------------------------

def test_fifo_single_transfer_time():
    sim = Simulator()
    ch = FifoChannel(sim, bandwidth=100.0, latency=0.5)
    ev = ch.transfer(200.0)  # 2s service + 0.5 latency

    def proc(sim):
        yield ev
        return sim.now

    assert sim.run_process(proc(sim)) == pytest.approx(2.5)


def test_fifo_serializes_back_to_back():
    sim = Simulator()
    ch = FifoChannel(sim, bandwidth=100.0, latency=0.0)
    done = []

    def proc(sim):
        e1 = ch.transfer(100.0)
        e2 = ch.transfer(100.0)
        yield e1
        done.append(sim.now)
        yield e2
        done.append(sim.now)

    sim.run_process(proc(sim))
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]


def test_fifo_latency_pipelined():
    """Latency applies once per message, overlapping with the next service."""
    sim = Simulator()
    ch = FifoChannel(sim, bandwidth=100.0, latency=10.0)

    def proc(sim):
        e1 = ch.transfer(100.0)  # done at 1 + 10 = 11
        e2 = ch.transfer(100.0)  # service 1..2, done at 2 + 10 = 12
        yield e1
        t1 = sim.now
        yield e2
        return (t1, sim.now)

    t1, t2 = sim.run_process(proc(sim))
    assert t1 == pytest.approx(11.0)
    assert t2 == pytest.approx(12.0)


def test_fifo_zero_bytes_costs_latency_only():
    sim = Simulator()
    ch = FifoChannel(sim, bandwidth=100.0, latency=0.25)

    def proc(sim):
        yield ch.transfer(0.0)
        return sim.now

    assert sim.run_process(proc(sim)) == pytest.approx(0.25)


def test_fifo_stats():
    sim = Simulator()
    ch = FifoChannel(sim, bandwidth=100.0)
    ch.transfer(50.0)
    ch.transfer(150.0)
    sim.run()
    assert ch.bytes_sent == 200.0
    assert ch.messages_sent == 2


def test_fifo_negative_size_raises():
    sim = Simulator()
    ch = FifoChannel(sim, bandwidth=1.0)
    with pytest.raises(ValueError):
        ch.transfer(-1.0)


def test_fifo_invalid_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        FifoChannel(sim, bandwidth=0.0)
    with pytest.raises(ValueError):
        FifoChannel(sim, bandwidth=1.0, latency=-1.0)


# ---------------------------------------------------------------------------
# FairShareLink
# ---------------------------------------------------------------------------

def test_fairshare_single_flow_full_bandwidth():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0, latency=0.0)

    def proc(sim):
        yield link.transfer(300.0)
        return sim.now

    assert sim.run_process(proc(sim)) == pytest.approx(3.0)


def test_fairshare_two_equal_flows_halve_rate():
    """Two simultaneous equal flows each take 2x the solo time."""
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)

    def proc(sim):
        e1 = link.transfer(100.0)
        e2 = link.transfer(100.0)
        yield sim.all_of([e1, e2])
        return sim.now

    assert sim.run_process(proc(sim)) == pytest.approx(2.0)


def test_fairshare_short_flow_finishes_then_rate_recovers():
    """100B + 300B started together on B=100: share until the short one
    drains at t=2 (each got 100B), then the long one finishes its remaining
    200B at full rate by t=4."""
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)
    times = {}

    def proc(sim):
        e_short = link.transfer(100.0, value="short")
        e_long = link.transfer(300.0, value="long")

        def mark(ev):
            times[ev.value] = sim.now

        e_short.add_callback(mark)
        e_long.add_callback(mark)
        yield sim.all_of([e_short, e_long])

    sim.run_process(proc(sim))
    assert times["short"] == pytest.approx(2.0)
    assert times["long"] == pytest.approx(4.0)


def test_fairshare_late_arrival_slows_existing_flow():
    """Flow A (200B) alone for 1s (100B done), then B (100B) arrives:
    both at 50 B/s.  B's 100B takes 2s -> t=3; A's remaining 100B also
    drains at t=3."""
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)
    times = {}

    def starter(sim):
        ea = link.transfer(200.0, value="a")
        ea.add_callback(lambda ev: times.__setitem__("a", sim.now))
        yield sim.timeout(1.0)
        eb = link.transfer(100.0, value="b")
        eb.add_callback(lambda ev: times.__setitem__("b", sim.now))
        yield sim.all_of([ea, eb])

    sim.run_process(starter(sim))
    assert times["a"] == pytest.approx(3.0)
    assert times["b"] == pytest.approx(3.0)


def test_fairshare_latency_added_after_drain():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0, latency=0.5)

    def proc(sim):
        yield link.transfer(100.0)
        return sim.now

    assert sim.run_process(proc(sim)) == pytest.approx(1.5)


def test_fairshare_zero_bytes():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0, latency=0.25)

    def proc(sim):
        yield link.transfer(0.0)
        return sim.now

    assert sim.run_process(proc(sim)) == pytest.approx(0.25)


def test_fairshare_conservation_of_bytes():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=64.0)
    sizes = [10.0, 250.0, 3.0, 77.0]

    def proc(sim):
        evs = []
        for i, s in enumerate(sizes):
            evs.append(link.transfer(s))
            yield sim.timeout(0.1 * i)
        yield sim.all_of(evs)
        return sim.now

    end = sim.run_process(proc(sim))
    assert link.bytes_sent == pytest.approx(sum(sizes))
    # Total time bounded below by aggregate bytes / bandwidth.
    assert end >= sum(sizes) / 64.0 - 1e-9


def test_fairshare_active_flow_count():
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)

    def proc(sim):
        link.transfer(1000.0)
        link.transfer(1000.0)
        yield sim.timeout(0.0)
        return link.active_flows

    assert sim.run_process(proc(sim)) == 2


# ---------------------------------------------------------------------------
# Mailbox
# ---------------------------------------------------------------------------

def test_mailbox_put_then_get():
    sim = Simulator()
    box = Mailbox(sim)
    box.put("x")

    def proc(sim):
        item = yield box.get()
        return item

    assert sim.run_process(proc(sim)) == "x"


def test_mailbox_get_blocks_until_put():
    sim = Simulator()
    box = Mailbox(sim)

    def getter(sim):
        item = yield box.get()
        return (sim.now, item)

    def putter(sim):
        yield sim.timeout(2.0)
        box.put("late")

    g = sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert g.value == (2.0, "late")


def test_mailbox_fifo_order():
    sim = Simulator()
    box = Mailbox(sim)
    for i in range(5):
        box.put(i)
    out = []

    def proc(sim):
        for _ in range(5):
            out.append((yield box.get()))

    sim.run_process(proc(sim))
    assert out == [0, 1, 2, 3, 4]
    assert len(box) == 0
