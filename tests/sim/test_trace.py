"""Unit tests for the trace recorder."""

import pytest

from repro.sim import NULL_TRACE, TraceRecorder


def make_trace():
    tr = TraceRecorder()
    tr.record(0.0, "kernel_launch", "gpu0")
    tr.record(0.0, "wg_start", "gpu0/wg0", task=0)
    tr.record(1.0, "wg_end", "gpu0/wg0", task=0)
    tr.record(1.0, "put_issue", "gpu0/wg0", nbytes=128, dest=1)
    tr.record(1.0, "wg_start", "gpu0/wg0", task=1)
    tr.record(2.5, "wg_end", "gpu0/wg0", task=1)
    tr.record(0.0, "wg_start", "gpu0/wg1", task=2)
    tr.record(3.0, "wg_end", "gpu0/wg1", task=2)
    tr.record(3.0, "kernel_end", "gpu0")
    return tr


def test_record_and_len():
    tr = make_trace()
    assert len(tr) == 9


def test_disabled_recorder_drops_events():
    tr = TraceRecorder(enabled=False)
    tr.record(0.0, "wg_start", "x")
    assert len(tr) == 0


def test_filter_by_kind():
    tr = make_trace()
    puts = tr.filter(kind="put_issue")
    assert len(puts) == 1
    assert puts[0].detail["nbytes"] == 128


def test_filter_by_actor():
    tr = make_trace()
    assert len(tr.filter(actor="gpu0/wg1")) == 2


def test_filter_by_predicate():
    tr = make_trace()
    late = tr.filter(predicate=lambda ev: ev.time >= 2.5)
    assert {ev.kind for ev in late} == {"wg_end", "kernel_end"}


def test_actors_in_first_seen_order():
    tr = make_trace()
    assert tr.actors() == ["gpu0", "gpu0/wg0", "gpu0/wg1"]


def test_spans_stitching():
    tr = make_trace()
    spans = tr.spans("wg", actor="gpu0/wg0")
    assert [(s.start, s.end) for s in spans] == [(0.0, 1.0), (1.0, 2.5)]
    assert spans[0].duration == 1.0
    assert spans[0].detail["task"] == 0


def test_spans_kernel():
    tr = make_trace()
    [k] = tr.spans("kernel")
    assert (k.start, k.end) == (0.0, 3.0)


def test_spans_unknown_kind_raises():
    tr = make_trace()
    with pytest.raises(KeyError):
        tr.spans("nope")


def test_unmatched_open_span_dropped():
    tr = TraceRecorder()
    tr.record(0.0, "wg_start", "a")
    assert tr.spans("wg") == []


def test_unmatched_trailing_start_after_closed_spans():
    """A start with no end (sim ended mid-span) is dropped, but every
    previously closed span of the same actor is still returned."""
    tr = TraceRecorder()
    tr.record(0.0, "wg_start", "a", task=0)
    tr.record(1.0, "wg_end", "a", task=0)
    tr.record(1.0, "wg_start", "a", task=1)  # trailing, never closed
    spans = tr.spans("wg")
    assert [(s.start, s.end) for s in spans] == [(0.0, 1.0)]
    assert spans[0].detail["task"] == 0
    # Other actors' spans are unaffected by a's dangling start.
    tr.record(2.0, "wg_start", "b")
    tr.record(3.0, "wg_end", "b")
    assert [(s.start, s.end) for s in tr.spans("wg")] == [(0.0, 1.0),
                                                          (2.0, 3.0)]


def test_reentrant_starts_nest_lifo():
    """Regression: a second start before the first end used to clobber the
    outer open span — LIFO matching must return both."""
    tr = TraceRecorder()
    tr.record(0.0, "wg_start", "a", task=0)
    tr.record(1.0, "wg_start", "a", task=1)   # re-entrant inner span
    tr.record(2.0, "wg_end", "a")
    tr.record(3.0, "wg_end", "a")
    spans = tr.spans("wg")
    assert [(s.start, s.end) for s in spans] == [(1.0, 2.0), (0.0, 3.0)]
    assert spans[0].detail["task"] == 1
    assert spans[1].detail["task"] == 0


def test_reentrant_starts_isolated_per_actor():
    tr = TraceRecorder()
    tr.record(0.0, "wg_start", "a", task=0)
    tr.record(0.5, "wg_start", "b", task=9)
    tr.record(1.0, "wg_start", "a", task=1)
    tr.record(2.0, "wg_end", "a")
    tr.record(2.5, "wg_end", "b")
    tr.record(3.0, "wg_end", "a")
    assert [(s.actor, s.start, s.end) for s in tr.spans("wg")] == [
        ("a", 1.0, 2.0), ("b", 0.5, 2.5), ("a", 0.0, 3.0)]


def test_null_trace_is_disabled_and_inert():
    assert not NULL_TRACE.enabled
    NULL_TRACE.record(0.0, "wg_start", "x", task=1)
    assert len(NULL_TRACE) == 0


def test_null_trace_cannot_be_enabled():
    with pytest.raises(ValueError):
        NULL_TRACE.enabled = True
    assert not NULL_TRACE.enabled


def test_render_timeline_contains_rows_and_markers():
    tr = make_trace()
    out = tr.render_timeline(actors=["gpu0/wg0", "gpu0/wg1"], width=40)
    lines = out.splitlines()
    assert lines[0].startswith("gpu0/wg0")
    assert "#" in lines[0]
    assert "P" in lines[0]  # the put marker
    assert "#" in lines[1]


def test_render_empty_trace():
    tr = TraceRecorder()
    assert tr.render_timeline() == "(empty trace)"


def test_render_single_event_clamps_to_one_column():
    """A single event gives the timeline zero extent: everything lands in
    column 0 instead of dividing by a fake epsilon."""
    tr = TraceRecorder()
    tr.record(1.5, "put_issue", "a")
    out = tr.render_timeline(width=40)
    row = out.splitlines()[0]
    body = row[row.index("|") + 1:row.rindex("|")]
    assert body[0] == "P"
    assert set(body[1:]) <= {" "}


def test_render_zero_duration_span_single_column():
    """All events at one timestamp (zero-extent trace): the span renders
    as a single '#' column, not a misleading full-width bar."""
    tr = TraceRecorder()
    tr.record(2.0, "wg_start", "a", task=0)
    tr.record(2.0, "wg_end", "a")
    out = tr.render_timeline(width=40)
    row = out.splitlines()[0]
    body = row[row.index("|") + 1:row.rindex("|")]
    assert body[0] == "#"
    assert set(body[1:]) <= {" "}


def test_render_zero_duration_span_in_nonzero_trace():
    """A zero-duration span inside a trace with real extent still paints
    exactly one column at its position."""
    tr = TraceRecorder()
    tr.record(0.0, "kernel_launch", "gpu")
    tr.record(5.0, "wg_start", "a")
    tr.record(5.0, "wg_end", "a")
    tr.record(10.0, "kernel_end", "gpu")
    out = tr.render_timeline(actors=["a"], width=41)
    row = out.splitlines()[0]
    body = row[row.index("|") + 1:row.rindex("|")]
    assert body.count("#") == 1
    assert body[20] == "#"  # t=5 of [0, 10] at width 41 -> column 20


def test_clear():
    tr = make_trace()
    tr.clear()
    assert len(tr) == 0
