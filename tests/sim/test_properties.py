"""Property-based tests (hypothesis) for the simulation core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FairShareLink, FifoChannel, Resource, Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                 allow_nan=False), min_size=1, max_size=30))
def test_clock_monotonic_and_ends_at_max_delay(delays):
    """The clock never runs backwards and drains at the max scheduled time."""
    sim = Simulator()
    seen = []

    def proc(sim, d):
        yield sim.timeout(d)
        seen.append(sim.now)

    for d in delays:
        sim.process(proc(sim, d))
    end = sim.run()
    assert seen == sorted(seen)
    assert math.isclose(end, max(delays), rel_tol=1e-12, abs_tol=1e-12)


@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e6,
                                allow_nan=False), min_size=1, max_size=20),
       bw=st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
def test_fifo_channel_work_conservation(sizes, bw):
    """Total FIFO service time equals sum(size)/bandwidth exactly."""
    sim = Simulator()
    ch = FifoChannel(sim, bandwidth=bw)
    for s in sizes:
        ch.transfer(s)
    end = sim.run()
    assert math.isclose(end, sum(sizes) / bw, rel_tol=1e-9)


@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e5,
                                allow_nan=False), min_size=1, max_size=12),
       bw=st.floats(min_value=1.0, max_value=1e4, allow_nan=False))
@settings(max_examples=50)
def test_fairshare_completion_bounds(sizes, bw):
    """Simultaneous fair-share flows finish no earlier than their solo time
    and no later than total-work time (work conservation bounds)."""
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=bw)
    completions = {}

    def proc(sim):
        evs = []
        for i, s in enumerate(sizes):
            ev = link.transfer(s, value=i)
            ev.add_callback(lambda e: completions.__setitem__(e.value, sim.now))
            evs.append(ev)
        yield sim.all_of(evs)

    sim.run_process(proc(sim))
    total_time = sum(sizes) / bw
    for i, s in enumerate(sizes):
        solo = s / bw
        assert completions[i] >= solo - 1e-6 * max(solo, 1.0)
        assert completions[i] <= total_time + 1e-6 * max(total_time, 1.0)
    # The last completion is exactly the work-conserving makespan.
    assert math.isclose(max(completions.values()), total_time, rel_tol=1e-6)


@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e5,
                                allow_nan=False), min_size=2, max_size=10))
@settings(max_examples=50)
def test_fairshare_smaller_flows_finish_first(sizes):
    """For flows started simultaneously, completion order follows size."""
    sim = Simulator()
    link = FairShareLink(sim, bandwidth=100.0)
    order = []

    def proc(sim):
        evs = []
        for i, s in enumerate(sizes):
            ev = link.transfer(s, value=(s, i))
            ev.add_callback(lambda e: order.append(e.value))
            evs.append(ev)
        yield sim.all_of(evs)

    sim.run_process(proc(sim))
    finished_sizes = [s for s, _i in order]
    # Tolerate float ties: flows whose sizes differ by < 1e-6 relative may
    # drain in the same completion batch in either order.
    for earlier, later in zip(finished_sizes, finished_sizes[1:]):
        assert earlier <= later * (1 + 1e-6) + 1e-9


@given(capacity=st.integers(min_value=1, max_value=8),
       holds=st.lists(st.floats(min_value=0.01, max_value=10.0,
                                allow_nan=False), min_size=1, max_size=25))
@settings(max_examples=50)
def test_resource_never_oversubscribed(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_seen = [0]

    def user(sim, hold):
        yield res.request()
        max_seen[0] = max(max_seen[0], res.in_use)
        yield sim.timeout(hold)
        res.release()

    for h in holds:
        sim.process(user(sim, h))
    sim.run()
    assert max_seen[0] <= capacity
    assert res.in_use == 0
    assert res.queued == 0
