"""Tests for the scale-out simulator: graph, torus network, DLRM workload."""

import pytest

from repro.astra import (
    ExecutionGraph,
    TorusNetwork,
    build_dlrm_graph,
    compute_kernel_times,
    run_dlrm_scaleout,
    sweep_node_counts,
)
from repro.models.configs import TABLE2_DLRM, TABLE2_TORUS


# ---------------------------------------------------------------------------
# Execution graph
# ---------------------------------------------------------------------------

def test_serial_chain():
    g = ExecutionGraph()
    g.add("a", "comp", 1.0)
    g.add("b", "comp", 2.0, deps=["a"])
    total, spans = g.simulate()
    assert total == 3.0
    assert spans["b"] == (1.0, 3.0)


def test_comp_and_net_overlap():
    g = ExecutionGraph()
    g.add("compute", "comp", 5.0)
    g.add("comm", "net", 4.0)
    total, _ = g.simulate()
    assert total == 5.0  # fully overlapped


def test_same_resource_serializes():
    g = ExecutionGraph()
    g.add("c1", "comp", 2.0)
    g.add("c2", "comp", 3.0)
    total, _ = g.simulate()
    assert total == 5.0


def test_fused_node_occupies_both_resources():
    g = ExecutionGraph()
    g.add("fused", "fused", 4.0)
    g.add("comm", "net", 1.0)   # must wait: net is taken by the fused node
    g.add("comp", "comp", 1.0)  # likewise
    total, spans = g.simulate()
    assert total == 5.0
    assert spans["comm"][0] >= 4.0
    assert spans["comp"][0] >= 4.0


def test_dependency_validation_and_cycles():
    g = ExecutionGraph()
    with pytest.raises(ValueError, match="unknown"):
        g.add("x", "comp", 1.0, deps=["ghost"])
    g.add("a", "comp", 1.0)
    with pytest.raises(ValueError, match="duplicate"):
        g.add("a", "comp", 1.0)
    with pytest.raises(ValueError, match="kind"):
        g.add("b", "gpu", 1.0)
    with pytest.raises(ValueError, match="negative"):
        g.add("c", "comp", -1.0)


def test_critical_path():
    g = ExecutionGraph()
    g.add("a", "comp", 1.0)
    g.add("b", "net", 10.0, deps=["a"])
    g.add("c", "comp", 1.0, deps=["a"])
    g.add("d", "comp", 1.0, deps=["b", "c"])
    assert g.critical_path() == ["a", "b", "d"]


def test_empty_graph():
    total, spans = ExecutionGraph().simulate()
    assert total == 0.0 and spans == {}


# ---------------------------------------------------------------------------
# Torus network
# ---------------------------------------------------------------------------

def test_square_ish_factorization():
    t = TorusNetwork.square_ish(128, TABLE2_TORUS)
    assert t.num_nodes == 128
    assert {t.dim_x, t.dim_y} == {16, 8}
    t2 = TorusNetwork.square_ish(64, TABLE2_TORUS)
    assert (t2.dim_x, t2.dim_y) == (8, 8)


def test_avg_hops_grows_with_size():
    small = TorusNetwork.square_ish(16, TABLE2_TORUS)
    big = TorusNetwork.square_ish(128, TABLE2_TORUS)
    assert big.avg_hops() > small.avg_hops()


def test_allreduce_time_scaling():
    t = TorusNetwork.square_ish(64, TABLE2_TORUS)
    t1 = t.allreduce_time(1e6)
    t2 = t.allreduce_time(2e6)
    assert t1 < t2 < 2.2 * t1
    assert t.allreduce_time(0) == 0.0
    with pytest.raises(ValueError):
        t.allreduce_time(-1)


def test_alltoall_time_grows_with_system():
    small = TorusNetwork.square_ish(16, TABLE2_TORUS)
    big = TorusNetwork.square_ish(128, TABLE2_TORUS)
    n = 100e6
    assert big.alltoall_time(n) > small.alltoall_time(n)
    with pytest.raises(ValueError):
        big.alltoall_time(-1)


def test_single_node_collectives_free():
    t = TorusNetwork(1, 1, TABLE2_TORUS)
    assert t.allreduce_time(1e9) == 0.0
    assert t.alltoall_time(1e9) == 0.0


def test_torus_validation():
    with pytest.raises(ValueError):
        TorusNetwork(0, 4, TABLE2_TORUS)
    with pytest.raises(ValueError):
        TorusNetwork(2, 2, TABLE2_TORUS, alltoall_efficiency=0.0)


# ---------------------------------------------------------------------------
# DLRM scale-out (Fig. 15)
# ---------------------------------------------------------------------------

def test_kernel_times_positive():
    net = TorusNetwork.square_ish(128, TABLE2_TORUS)
    t = compute_kernel_times(TABLE2_DLRM, net)
    for f in ("bottom_fwd", "embed_fwd", "a2a_fwd", "inter_top_fwd",
              "top_inter_bwd", "a2a_bwd", "embed_bwd", "bottom_bwd",
              "wgrad_allreduce", "embed_fused_fwd", "embed_fused_bwd"):
        assert getattr(t, f) > 0, f


def test_fig15_fused_reduces_128_node_training_by_about_21pct():
    """Paper Fig. 15: ~21% lower execution time at 128 nodes."""
    res = run_dlrm_scaleout(128)
    assert res.reduction_pct == pytest.approx(21.0, abs=4.0)


def test_baseline_exposes_substantial_alltoall():
    """The motivation claim ([47]): >35% of DLRM time is exposed A2A."""
    res = run_dlrm_scaleout(128)
    assert res.exposed_a2a_fraction() > 0.35


def test_fused_wins_across_system_sizes():
    for res in sweep_node_counts([16, 64, 128]):
        assert res.normalized < 1.0


def test_fused_graph_has_no_standalone_a2a():
    net = TorusNetwork.square_ish(16, TABLE2_TORUS)
    t = compute_kernel_times(TABLE2_DLRM, net)
    fused_nodes = {n.name: n.kind for n in build_dlrm_graph(t, True).nodes()}
    assert "a2a_fwd" not in fused_nodes
    assert fused_nodes["fused_embed_a2a_fwd"] == "fused"


def test_scaleout_validation():
    with pytest.raises(ValueError, match="at least 2"):
        run_dlrm_scaleout(1)
