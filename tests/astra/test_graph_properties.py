"""Property-based tests for execution-graph scheduling invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.astra import ExecutionGraph


@st.composite
def random_dag(draw):
    """A random DAG: each node may depend on earlier nodes only."""
    n = draw(st.integers(1, 15))
    nodes = []
    for i in range(n):
        kind = draw(st.sampled_from(["comp", "net", "fused"]))
        dur = draw(st.floats(0.0, 10.0, allow_nan=False))
        n_deps = draw(st.integers(0, min(i, 3)))
        deps = sorted(set(draw(st.lists(st.integers(0, i - 1),
                                        min_size=n_deps, max_size=n_deps))
                          )) if i else []
        nodes.append((f"n{i}", kind, dur, [f"n{d}" for d in deps]))
    return nodes


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_makespan_lower_bounds(dag):
    g = ExecutionGraph()
    for name, kind, dur, deps in dag:
        g.add(name, kind, dur, deps=deps)
    total, spans = g.simulate()

    # Bound 1: makespan >= critical (dependency) path length.
    cp = g.critical_path()
    durs = {name: dur for name, _k, dur, _d in dag}
    assert total >= sum(durs[n] for n in cp) - 1e-9

    # Bound 2: makespan >= per-resource work sums (fused uses both).
    comp = sum(d for _n, k, d, _ in dag if k in ("comp", "fused"))
    net = sum(d for _n, k, d, _ in dag if k in ("net", "fused"))
    assert total >= max(comp, net) - 1e-9


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_spans_respect_dependencies_and_resources(dag):
    g = ExecutionGraph()
    for name, kind, dur, deps in dag:
        g.add(name, kind, dur, deps=deps)
    total, spans = g.simulate()
    kinds = {name: kind for name, kind, _d, _deps in dag}

    for name, kind, dur, deps in dag:
        start, end = spans[name]
        assert end == pytest.approx(start + dur)
        for d in deps:
            assert start >= spans[d][1] - 1e-9  # after dependencies

    # No two nodes sharing a resource overlap.
    res_of = {"comp": {"comp"}, "net": {"net"}, "fused": {"comp", "net"}}
    names = list(spans)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if res_of[kinds[a]] & res_of[kinds[b]]:
                sa, ea = spans[a]
                sb, eb = spans[b]
                assert ea <= sb + 1e-9 or eb <= sa + 1e-9, (a, b)
