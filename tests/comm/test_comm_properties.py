"""Property-based tests for communication-layer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import Communicator
from repro.hw import build_cluster
from repro.sim import Simulator


def make_env(num_nodes=1, gpus_per_node=4):
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=num_nodes,
                            gpus_per_node=gpus_per_node)
    return sim, cluster, Communicator(cluster)


# ---------------------------------------------------------------------------
# Collective semantics under random inputs
# ---------------------------------------------------------------------------

@given(world_shape=st.sampled_from([(1, 2), (1, 4), (2, 1), (2, 2)]),
       elems=st.integers(1, 64), seed=st.integers(0, 10 ** 6))
@settings(max_examples=25, deadline=None)
def test_allreduce_equals_numpy_sum(world_shape, elems, seed):
    nodes, gpn = world_shape
    sim, cluster, comm = make_env(nodes, gpn)
    world = cluster.world_size
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(elems).astype(np.float32)
              for _ in range(world)]
    outs = sim.run_process(comm.collectives.all_reduce(arrays))
    expected = np.sum(np.stack(arrays), axis=0)
    for out in outs:
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)


@given(world_shape=st.sampled_from([(1, 2), (1, 4), (2, 2)]),
       elems=st.integers(1, 32), seed=st.integers(0, 10 ** 6))
@settings(max_examples=25, deadline=None)
def test_alltoall_is_transpose_involution(world_shape, elems, seed):
    """Applying All-to-All twice recovers the original send buffers."""
    nodes, gpn = world_shape
    sim, cluster, comm = make_env(nodes, gpn)
    world = cluster.world_size
    rng = np.random.default_rng(seed)
    sends = [rng.standard_normal((world, elems)).astype(np.float32)
             for _ in range(world)]
    once = sim.run_process(comm.collectives.all_to_all(sends))
    twice = sim.run_process(comm.collectives.all_to_all(once))
    for orig, back in zip(sends, twice):
        np.testing.assert_array_equal(orig, back)


@given(elems=st.integers(4, 64), seed=st.integers(0, 10 ** 6))
@settings(max_examples=20, deadline=None)
def test_reduce_scatter_then_allgather_equals_allreduce(elems, seed):
    sim, cluster, comm = make_env()
    world = cluster.world_size
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal((world, elems)).astype(np.float32)
              for _ in range(world)]
    rs = sim.run_process(comm.collectives.reduce_scatter(arrays))
    ag = sim.run_process(comm.collectives.all_gather(rs))
    flat = [a.reshape(world * elems) for a in arrays]
    ar = sim.run_process(comm.collectives.all_reduce(flat))
    for rank in range(world):
        np.testing.assert_allclose(ag[rank].reshape(-1), ar[rank],
                                   rtol=1e-5, atol=1e-5)


# ---------------------------------------------------------------------------
# Flag ordering invariant under random put schedules
# ---------------------------------------------------------------------------

@given(n_slices=st.integers(1, 12), nbytes=st.integers(64, 1 << 16),
       stagger=st.floats(0.0, 1e-4))
@settings(max_examples=25, deadline=None)
def test_flag_never_precedes_payload(n_slices, nbytes, stagger):
    """Whenever a consumer observes sliceRdy, the payload is delivered —
    for any message size and issue staggering."""
    sim, cluster, comm = make_env(2, 1)
    buf = comm.alloc((n_slices, nbytes // 4 + 1), np.float32)
    flags = comm.alloc_flags(n_slices)
    violations = []

    def producer(sim):
        ctx = comm.ctx(0)
        for s in range(n_slices):
            payload = np.full(nbytes // 4 + 1, s + 1, np.float32)
            ctx.put_signal(buf, payload, dst_rank=1, flags=flags,
                           flag_idx=s, dst_index=(s, slice(None)))
            yield sim.timeout(stagger)

    def consumer(sim):
        for s in range(n_slices):
            yield comm.ctx(1).wait_until(flags, s)
            if not np.all(buf.local(1)[s] == s + 1):
                violations.append(s)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert violations == []


@given(sizes=st.lists(st.integers(1, 1 << 18), min_size=1, max_size=10))
@settings(max_examples=25, deadline=None)
def test_quiet_implies_all_delivered(sizes):
    sim, cluster, comm = make_env(2, 1)

    def proc(sim):
        ctx = comm.ctx(0)
        evs = [ctx.put_bytes(1, float(s)) for s in sizes]
        yield ctx.quiet()
        return all(ev.processed for ev in evs)

    assert sim.run_process(proc(sim)) is True


@given(sizes=st.lists(st.integers(1, 1 << 16), min_size=2, max_size=8),
       data=st.data())
@settings(max_examples=25, deadline=None)
def test_fence_orders_only_target_destination(sizes, data):
    """fence(d) waits for puts to d but not for puts to other ranks."""
    sim, cluster, comm = make_env(1, 4)
    split = data.draw(st.integers(1, len(sizes) - 1))

    def proc(sim):
        ctx = comm.ctx(0)
        to_d = [ctx.put_bytes(1, float(s)) for s in sizes[:split]]
        for s in sizes[split:]:
            ctx.put_bytes(2, float(s))
        yield ctx.fence(1)
        d_done = all(ev.processed for ev in to_d)
        return d_done

    assert sim.run_process(proc(sim)) is True


# ---------------------------------------------------------------------------
# Timing-model sanity under random configuration
# ---------------------------------------------------------------------------

@given(nbytes=st.integers(1 << 10, 1 << 24))
@settings(max_examples=20, deadline=None)
def test_allreduce_bytes_matches_functional_structure(nbytes):
    """Timing-only AllReduce takes exactly as long as the functional one
    with equal wire bytes."""
    elems = nbytes // 4

    sim1, _c1, comm1 = make_env()
    arrays = [np.zeros(elems, np.float32) for _ in range(4)]
    sim1.run_process(comm1.collectives.all_reduce(arrays,
                                                  algorithm="direct"))
    t_functional = sim1.now

    sim2, _c2, comm2 = make_env()
    sim2.run_process(comm2.collectives.all_reduce_bytes(
        float(elems * 4), elems, algorithm="direct"))
    t_bytes = sim2.now
    assert t_bytes == pytest.approx(t_functional, rel=1e-9)


def test_cpu_proxy_adds_latency_per_message():
    times = {}
    for proxy in (False, True):
        sim = Simulator()
        cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
        comm = Communicator(cluster, cpu_proxy=proxy)

        def proc(sim, comm=comm):
            yield comm.ctx(0).put_bytes(1, 64.0)
            return sim.now

        times[proxy] = sim.run_process(proc(sim))
    from repro.comm.shmem import ShmemContext

    assert times[True] == pytest.approx(
        times[False] + ShmemContext.CPU_PROXY_LATENCY)
