"""Tests for the symmetric heap allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import HeapError, SymmetricHeap


def test_alloc_same_offset_all_ranks():
    heap = SymmetricHeap(world_size=4, capacity=1 << 20)
    buf = heap.alloc((8, 8), np.float32)
    assert buf.world_size == 4
    for r in range(4):
        assert buf.local(r).shape == (8, 8)
        assert buf.local(r).dtype == np.float32


def test_ranks_have_independent_storage():
    heap = SymmetricHeap(world_size=2, capacity=1 << 20)
    buf = heap.alloc((4,), np.float64)
    buf.local(0)[:] = 1.0
    assert np.all(buf.local(1) == 0.0)


def test_offsets_distinct_and_aligned():
    heap = SymmetricHeap(world_size=1, capacity=1 << 20, alignment=256)
    a = heap.alloc((3,), np.float32)   # 12 bytes -> one 256B granule
    b = heap.alloc((3,), np.float32)
    assert a.offset != b.offset
    assert a.offset % 256 == 0 and b.offset % 256 == 0


def test_nbytes_property():
    heap = SymmetricHeap(world_size=1, capacity=1 << 20)
    buf = heap.alloc((10, 10), np.float32)
    assert buf.nbytes == 400


def test_scalar_shape():
    heap = SymmetricHeap(world_size=1, capacity=1 << 20)
    buf = heap.alloc(16, np.int32)
    assert buf.shape == (16,)


def test_capacity_exhaustion():
    heap = SymmetricHeap(world_size=1, capacity=1024, alignment=256)
    heap.alloc((128,), np.float64)  # 1024 bytes
    with pytest.raises(HeapError, match="exhausted"):
        heap.alloc((1,), np.float32)


def test_free_and_reuse():
    heap = SymmetricHeap(world_size=1, capacity=1024, alignment=256)
    a = heap.alloc((128,), np.float64)
    a.free()
    b = heap.alloc((128,), np.float64)  # fits again
    assert b.offset == 0
    assert heap.live_buffers == 1


def test_double_free_raises():
    heap = SymmetricHeap(world_size=1, capacity=1 << 20)
    a = heap.alloc((4,))
    a.free()
    with pytest.raises(HeapError, match="double free"):
        a.free()


def test_use_after_free_raises():
    heap = SymmetricHeap(world_size=2, capacity=1 << 20)
    a = heap.alloc((4,))
    a.free()
    with pytest.raises(HeapError, match="freed"):
        a.local(0)


def test_coalescing_allows_big_realloc():
    heap = SymmetricHeap(world_size=1, capacity=4096, alignment=256)
    bufs = [heap.alloc((256,), np.float32) for _ in range(4)]  # 4x1024
    for b in bufs:
        b.free()
    big = heap.alloc((1024,), np.float32)  # needs full 4096 contiguous
    assert big.offset == 0


def test_fill_helper():
    heap = SymmetricHeap(world_size=3, capacity=1 << 20)
    buf = heap.alloc((5,), np.float32)
    buf.fill(7.0)
    for r in range(3):
        assert np.all(buf.local(r) == 7.0)


def test_validation_errors():
    with pytest.raises(ValueError):
        SymmetricHeap(world_size=0)
    with pytest.raises(ValueError):
        SymmetricHeap(world_size=1, capacity=0)
    with pytest.raises(ValueError):
        SymmetricHeap(world_size=1, alignment=3)
    heap = SymmetricHeap(world_size=1, capacity=1 << 20)
    with pytest.raises(ValueError):
        heap.alloc((-1,))


@given(st.lists(st.tuples(st.integers(1, 64), st.booleans()),
                min_size=1, max_size=40))
@settings(max_examples=60)
def test_allocator_accounting_invariant(ops):
    """used == sum of live aligned sizes after any alloc/free sequence."""
    heap = SymmetricHeap(world_size=1, capacity=1 << 22, alignment=256)
    live = []
    for n, do_free in ops:
        if do_free and live:
            live.pop().free()
        else:
            live.append(heap.alloc((n,), np.float64))
    expected = sum(max(-(-b.nbytes // 256) * 256, 256) for b in live)
    assert heap.used == expected
    assert heap.live_buffers == len(live)
    for b in list(live):
        b.free()
    assert heap.used == 0
