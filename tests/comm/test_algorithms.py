"""Tests for analytic collective cost models."""

import pytest

from repro.comm import (
    allgather_time,
    alltoall_time,
    direct_allreduce_time,
    reduce_scatter_time,
    ring_allreduce_time,
    ring_schedule,
)


def test_ring_allreduce_formula():
    # 2(p-1) steps of (n/p)/B + L
    t = ring_allreduce_time(nbytes=8e6, world=4, bandwidth=1e9, latency=1e-6)
    assert t == pytest.approx(6 * (2e6 / 1e9 + 1e-6))


def test_ring_allreduce_world_one_is_free():
    assert ring_allreduce_time(1e9, 1, 1e9) == 0.0


def test_direct_allreduce_beats_ring_on_fully_connected():
    """The paper picks the two-phase direct algorithm for scale-up because
    it has the fewest steps."""
    n, p, bw = 64e6, 4, 80e9
    assert direct_allreduce_time(n, p, bw) < ring_allreduce_time(n, p, bw)


def test_direct_allreduce_formula():
    t = direct_allreduce_time(nbytes=4e6, world=4, bandwidth=1e9, latency=0.0)
    assert t == pytest.approx(2 * (4e6 * 3 / (4 * 1e9)))


def test_alltoall_single_port_vs_full_fanout():
    slow = alltoall_time(4e6, world=4, bandwidth=1e9, links_per_rank=1)
    fast = alltoall_time(4e6, world=4, bandwidth=1e9, links_per_rank=3)
    assert slow == pytest.approx(3 * 1e6 / 1e9)
    assert fast == pytest.approx(1e6 / 1e9)


def test_allgather_and_reduce_scatter_are_duals():
    n, p, bw = 8e6, 8, 1e9
    assert allgather_time(n / p, p, bw) == pytest.approx(
        reduce_scatter_time(n, p, bw))


def test_ring_schedule_structure():
    sched = ring_schedule(4)
    assert len(sched) == 3
    for step in sched:
        srcs = [s for s, _d in step]
        dsts = [d for _s, d in step]
        assert sorted(srcs) == [0, 1, 2, 3]
        assert sorted(dsts) == [0, 1, 2, 3]
        for s, d in step:
            assert d == (s + 1) % 4
    assert ring_schedule(1) == []


@pytest.mark.parametrize("fn", [ring_allreduce_time, direct_allreduce_time,
                                allgather_time, reduce_scatter_time])
def test_validation(fn):
    with pytest.raises(ValueError):
        fn(-1.0, 4, 1e9)
    with pytest.raises(ValueError):
        fn(1.0, 0, 1e9)
    with pytest.raises(ValueError):
        fn(1.0, 4, 0.0)


def test_alltoall_validation():
    with pytest.raises(ValueError):
        alltoall_time(1.0, 4, 1e9, links_per_rank=0)
