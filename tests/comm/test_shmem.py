"""Tests for the GPU-initiated SHMEM API (put/fence/quiet/flags)."""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.hw import IF_LINK, build_cluster
from repro.sim import Simulator


@pytest.fixture
def scaleup():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=1, gpus_per_node=4)
    return sim, cluster, Communicator(cluster)


@pytest.fixture
def scaleout():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
    return sim, cluster, Communicator(cluster)


def test_put_nbi_moves_data(scaleup):
    sim, cluster, comm = scaleup
    buf = comm.alloc((8,), np.float32)
    src = np.arange(8, dtype=np.float32)

    def proc(sim):
        ev = comm.ctx(0).put_nbi(buf, src, dst_rank=2)
        yield ev
        return sim.now

    end = sim.run_process(proc(sim))
    np.testing.assert_array_equal(buf.local(2), src)
    assert np.all(buf.local(1) == 0)  # only the destination rank got it
    assert end == pytest.approx(src.nbytes / IF_LINK.bandwidth + IF_LINK.latency)


def test_put_to_self_is_instant(scaleup):
    sim, cluster, comm = scaleup
    buf = comm.alloc((4,), np.float32)

    def proc(sim):
        yield comm.ctx(1).put_nbi(buf, np.ones(4, np.float32), dst_rank=1)
        return sim.now

    assert sim.run_process(proc(sim)) == 0.0
    assert np.all(buf.local(1) == 1.0)


def test_put_nbi_partial_index(scaleup):
    sim, cluster, comm = scaleup
    buf = comm.alloc((4, 8), np.float32)

    def proc(sim):
        yield comm.ctx(0).put_nbi(buf, np.full(8, 3.0, np.float32),
                                  dst_rank=1, dst_index=(2, slice(None)))

    sim.run_process(proc(sim))
    assert np.all(buf.local(1)[2] == 3.0)
    assert np.all(buf.local(1)[0] == 0.0)


def test_put_bad_rank_raises(scaleup):
    _sim, _cluster, comm = scaleup
    buf = comm.alloc((4,), np.float32)
    with pytest.raises(ValueError, match="bad destination rank"):
        comm.ctx(0).put_nbi(buf, np.zeros(4, np.float32), dst_rank=9)


def test_fence_waits_for_prior_puts(scaleup):
    sim, cluster, comm = scaleup
    buf = comm.alloc((1024,), np.float32)

    def proc(sim):
        ctx = comm.ctx(0)
        ctx.put_nbi(buf, np.zeros(1024, np.float32), dst_rank=1)
        t_issue = sim.now
        yield ctx.fence(1)
        return sim.now - t_issue

    dt = sim.run_process(proc(sim))
    assert dt >= 4096 / IF_LINK.bandwidth  # payload must have drained


def test_quiet_covers_all_destinations(scaleup):
    sim, cluster, comm = scaleup
    buf = comm.alloc((1 << 20,), np.float32)
    payload = np.zeros(1 << 20, np.float32)

    def proc(sim):
        ctx = comm.ctx(0)
        e1 = ctx.put_nbi(buf, payload, dst_rank=1)
        e2 = ctx.put_nbi(buf, payload, dst_rank=2)
        yield ctx.quiet()
        return e1.processed and e2.processed

    assert sim.run_process(proc(sim)) is True


def test_put_signal_orders_flag_after_payload(scaleup):
    """The sliceRdy flag must never be visible before the slice data."""
    sim, cluster, comm = scaleup
    buf = comm.alloc((1 << 18,), np.float32)
    flags = comm.alloc_flags(4)
    payload = np.ones(1 << 18, np.float32)
    times = {}

    def producer(sim):
        ev = comm.ctx(0).put_signal(buf, payload, dst_rank=1,
                                    flags=flags, flag_idx=0)
        yield ev
        times["flag_visible"] = sim.now

    def consumer(sim):
        yield comm.ctx(1).wait_until(flags, 0)
        times["consumed"] = sim.now
        # Data is guaranteed complete at this point.
        assert np.all(buf.local(1) == 1.0)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    payload_time = payload.nbytes / IF_LINK.bandwidth
    assert times["consumed"] >= payload_time
    assert times["consumed"] == pytest.approx(times["flag_visible"])


def test_put_signal_across_nodes(scaleout):
    sim, cluster, comm = scaleout
    buf = comm.alloc((1024,), np.float32)
    flags = comm.alloc_flags(1)

    def producer(sim):
        yield comm.ctx(0).put_signal(buf, np.full(1024, 5.0, np.float32),
                                     dst_rank=1, flags=flags, flag_idx=0)

    def consumer(sim):
        yield comm.ctx(1).wait_until(flags, 0)
        return sim.now

    sim.process(producer(sim))
    c = sim.process(consumer(sim))
    sim.run()
    assert np.all(buf.local(1) == 5.0)
    assert c.value > 0


def test_wait_until_already_set_is_instant(scaleup):
    sim, cluster, comm = scaleup
    flags = comm.alloc_flags(2)
    flags.set(0, 1, value=3)

    def proc(sim):
        v = yield comm.ctx(0).wait_until(flags, 1, value=2)
        return (sim.now, v)

    t, v = sim.run_process(proc(sim))
    assert t == 0.0 and v == 3


def test_flag_array_threshold_semantics(scaleup):
    sim, _cluster, comm = scaleup
    flags = comm.alloc_flags(1)
    ev = flags.wait_until(0, 0, value=5)
    flags.set(0, 0, value=3)
    assert not ev.triggered
    flags.set(0, 0, value=5)
    sim.run()
    assert ev.processed


def test_flag_reset_guards_pending_waiters(scaleup):
    _sim, _cluster, comm = scaleup
    flags = comm.alloc_flags(1)
    flags.wait_until(0, 0)
    with pytest.raises(RuntimeError, match="pending waiters"):
        flags.reset()


def test_flag_all_set(scaleup):
    _sim, _cluster, comm = scaleup
    flags = comm.alloc_flags(3)
    flags.set(1, 0)
    flags.set(1, 1)
    assert not flags.all_set(1)
    flags.set(1, 2)
    assert flags.all_set(1)


def test_stats_accounting(scaleup):
    sim, _cluster, comm = scaleup
    buf = comm.alloc((16,), np.float32)

    def proc(sim):
        ctx = comm.ctx(0)
        ctx.put_nbi(buf, np.zeros(16, np.float32), dst_rank=1)
        ctx.put_nbi(buf, np.zeros(16, np.float32), dst_rank=2)
        yield ctx.quiet()

    sim.run_process(proc(sim))
    assert comm.ctx(0).puts_issued == 2
    assert comm.ctx(0).bytes_put == 128.0


def test_barrier_releases_all_ranks(scaleup):
    sim, cluster, comm = scaleup
    released = []

    def rank_proc(sim, r, delay):
        yield sim.timeout(delay)
        yield comm.barrier()
        released.append((r, sim.now))

    for r in range(4):
        sim.process(rank_proc(sim, r, float(r)))
    sim.run()
    assert all(t == 3.0 for _r, t in released)
    assert len(released) == 4
