"""Tests for the baseline bulk-synchronous collective library."""

import numpy as np
import pytest

from repro.comm import CollectiveLibrary, Communicator
from repro.hw import MI210, build_cluster
from repro.sim import Simulator


def make(num_nodes=1, gpus_per_node=4):
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    return sim, cluster, CollectiveLibrary(cluster)


def run(sim, gen):
    return sim.run_process(gen)


def rng_arrays(world, shape, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32) for _ in range(world)]


# ---------------------------------------------------------------------------
# All-to-All
# ---------------------------------------------------------------------------

def test_alltoall_permutation_semantics():
    sim, cluster, lib = make()
    sends = rng_arrays(4, (4, 16))
    outs = run(sim, lib.all_to_all(sends))
    for r in range(4):
        for s in range(4):
            np.testing.assert_array_equal(outs[r][s], sends[s][r])


def test_alltoall_intranode_takes_time():
    sim, cluster, lib = make()
    sends = [np.zeros((4, 1 << 20), np.float32) for _ in range(4)]

    def proc(sim):
        yield from lib.all_to_all(sends)
        return sim.now

    end = run(sim, proc(sim))
    chunk = (1 << 20) * 4  # bytes per (src,dst) chunk
    assert end >= MI210.kernel_launch_overhead + chunk / 80e9


def test_alltoall_internode_slower_than_intranode():
    """20 GB/s IB + serialized NIC vs 80 GB/s parallel fabric links."""
    t = {}
    for label, (nodes, gpn) in {"intra": (1, 2), "inter": (2, 1)}.items():
        sim, cluster, lib = make(nodes, gpn)
        sends = [np.zeros((2, 1 << 21), np.float32) for _ in range(2)]

        def proc(sim, lib=lib, sends=sends):
            yield from lib.all_to_all(sends)
            return sim.now

        t[label] = run(sim, proc(sim))
    assert t["inter"] > 2 * t["intra"]


def test_alltoall_shape_validation():
    sim, cluster, lib = make()
    with pytest.raises(ValueError, match="send buffers"):
        run(sim, lib.all_to_all([np.zeros((4, 4))] * 3))
    sim2, _c2, lib2 = make()
    with pytest.raises(ValueError, match="leading dim"):
        run(sim2, lib2.all_to_all([np.zeros((3, 4))] * 4))


# ---------------------------------------------------------------------------
# AllReduce
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["direct", "ring"])
def test_allreduce_sum_semantics(algorithm):
    sim, cluster, lib = make()
    arrays = rng_arrays(4, (128,), seed=3)
    outs = run(sim, lib.all_reduce(arrays, algorithm=algorithm))
    expected = np.sum(np.stack(arrays), axis=0)
    for out in outs:
        np.testing.assert_allclose(out, expected, rtol=1e-6)


def test_allreduce_direct_faster_than_ring_intranode():
    times = {}
    for algo in ("direct", "ring"):
        sim, cluster, lib = make()
        arrays = [np.zeros(1 << 22, np.float32) for _ in range(4)]

        def proc(sim, lib=lib, arrays=arrays, algo=algo):
            yield from lib.all_reduce(arrays, algorithm=algo)
            return sim.now

        times[algo] = run(sim, proc(sim))
    assert times["direct"] < times["ring"]


def test_allreduce_default_algorithm_by_topology():
    sim, cluster, lib = make(1, 4)
    arrays = [np.ones(8, np.float32) for _ in range(4)]
    outs = run(sim, lib.all_reduce(arrays))
    assert np.all(outs[0] == 4.0)

    sim2, _c, lib2 = make(2, 1)
    arrays = [np.ones(8, np.float32) for _ in range(2)]
    outs = run(sim2, lib2.all_reduce(arrays))
    assert np.all(outs[0] == 2.0)


def test_allreduce_world_one():
    sim, cluster, lib = make(1, 1)
    outs = run(sim, lib.all_reduce([np.full(4, 2.0, np.float32)]))
    assert np.all(outs[0] == 2.0)


def test_allreduce_validation():
    sim, cluster, lib = make()
    with pytest.raises(ValueError, match="arrays"):
        run(sim, lib.all_reduce([np.zeros(4)] * 2))
    sim2, _c, lib2 = make()
    with pytest.raises(ValueError, match="shapes"):
        run(sim2, lib2.all_reduce([np.zeros(4), np.zeros(4), np.zeros(4),
                                   np.zeros(5)]))
    sim3, _c, lib3 = make()
    with pytest.raises(KeyError, match="unknown AllReduce algorithm"):
        run(sim3, lib3.all_reduce([np.zeros(4)] * 4, algorithm="magic"))


# ---------------------------------------------------------------------------
# ReduceScatter / AllGather / Broadcast
# ---------------------------------------------------------------------------

def test_reduce_scatter_semantics():
    sim, cluster, lib = make()
    arrays = rng_arrays(4, (4, 32), seed=5)
    outs = run(sim, lib.reduce_scatter(arrays))
    for r in range(4):
        expected = np.sum(np.stack([arrays[s][r] for s in range(4)]), axis=0)
        np.testing.assert_allclose(outs[r], expected, rtol=1e-6)


def test_all_gather_semantics():
    sim, cluster, lib = make()
    chunks = rng_arrays(4, (16,), seed=7)
    outs = run(sim, lib.all_gather(chunks))
    expected = np.stack(chunks)
    for out in outs:
        np.testing.assert_array_equal(out, expected)


def test_broadcast_semantics():
    sim, cluster, lib = make()
    src = np.arange(64, dtype=np.float32)
    outs = run(sim, lib.broadcast(src, root=2))
    for out in outs:
        np.testing.assert_array_equal(out, src)
    with pytest.raises(ValueError):
        run(Simulator(), lib.broadcast(src, root=10))


def test_launch_overhead_toggle():
    sim, cluster, _ = make(1, 2)
    lib_no = CollectiveLibrary(cluster, launch_overhead=False)
    tiny = [np.zeros((2, 1), np.float32) for _ in range(2)]

    def proc(sim):
        yield from lib_no.all_to_all(tiny)
        return sim.now

    end = run(sim, proc(sim))
    assert end < MI210.kernel_launch_overhead


def test_allreduce_consistent_with_communicator():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=1, gpus_per_node=4)
    comm = Communicator(cluster)
    arrays = rng_arrays(4, (64,), seed=11)
    outs = sim.run_process(comm.collectives.all_reduce(arrays))
    np.testing.assert_allclose(outs[0], np.sum(np.stack(arrays), axis=0),
                               rtol=1e-6)
