"""Unit-helper tests: constant relationships, formatting round-trips."""

import pytest

from repro.utils.units import (
    GB,
    GB_PER_S,
    GBIT_PER_S,
    GIB,
    GIGA,
    KB,
    KIB,
    MB,
    MIB,
    MS,
    NS,
    US,
    fmt_bytes,
    fmt_time,
)


def test_decimal_binary_relationships():
    assert KB == 1e3 and MB == 1e6 and GB == 1e9
    assert KIB == 1024 and MIB == 1024 ** 2 and GIB == 1024 ** 3
    # Binary units are strictly larger than their decimal cousins.
    assert KIB > KB and MIB > MB and GIB > GB


def test_time_constant_ladder():
    assert NS * 1e3 == pytest.approx(US)
    assert US * 1e3 == pytest.approx(MS)
    assert MS * 1e3 == pytest.approx(1.0)


def test_bandwidth_conventions():
    # A link quoted in Gbit/s carries 1/8 the bytes of one quoted in GB/s.
    assert GBIT_PER_S * 8 == GB_PER_S
    assert GB_PER_S == GIGA


@pytest.mark.parametrize("n, expected", [
    (0.0, "0 B"),
    (1.0, "1 B"),
    (999.0, "999 B"),
    (1e3, "1.00 KB"),
    (1536.0, "1.54 KB"),
    (1e6, "1.00 MB"),
    (2.5e9, "2.50 GB"),
    # Regression: TB-scale values used to print as e.g. "2500.00 GB"
    # because fmt_bytes had no TB rung.
    (2.5e12, "2.50 TB"),
    (1e13, "10.00 TB"),
    (999.99e9, "999.99 GB"),
])
def test_fmt_bytes(n, expected):
    assert fmt_bytes(n) == expected


def test_fmt_bytes_negative_magnitude():
    # abs() drives the unit choice; the sign survives.
    assert fmt_bytes(-2e6) == "-2.00 MB"


@pytest.mark.parametrize("t, expected", [
    # Regression: a zero duration used to render as the nonsensical
    # "0.0 ns" (zero has no natural scale; render it unitless-clean).
    (0.0, "0 s"),
    (-0.0, "0 s"),
    (1.0, "1.000 s"),
    (2.5, "2.500 s"),
    (1e-3, "1.000 ms"),
    (1.5e-3, "1.500 ms"),
    (1e-6, "1.000 us"),
    (700e-9, "700.0 ns"),
    (0.5e-9, "0.5 ns"),
])
def test_fmt_time(t, expected):
    assert fmt_time(t) == expected


def test_fmt_time_boundaries_pick_larger_unit():
    # Exactly at a unit boundary the larger unit wins (>= comparisons).
    assert fmt_time(MS) == "1.000 ms"
    assert fmt_time(US) == "1.000 us"
    assert fmt_time(1.0) == "1.000 s"


def test_fmt_time_negative_magnitude():
    assert fmt_time(-1e-3) == "-1.000 ms"
