"""Ablation: GPU-initiated networking vs a CPU proxy thread (paper Fig. 5).

The paper notes GPU threads can alternatively trigger NIC communication
through a CPU proxy (e.g. MSCCL++-style).  The proxy adds a
doorbell-to-submission latency to every remote transaction; with thousands
of slice-granular messages, direct GPU initiation is the better fit for
the fused kernels — which this ablation quantifies.
"""

from repro.bench.harness import FigureResult, Row
from repro.fused import EmbeddingA2AConfig, FusedEmbeddingAllToAll, OpHarness


def run_ablation(batch: int = 1024, tables: int = 64) -> FigureResult:
    res = FigureResult("Ablation", "GPU-initiated vs CPU-proxy networking")
    times = {}
    for proxy in (False, True):
        cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                                 functional=False)
        h = OpHarness(num_nodes=2, gpus_per_node=1, cpu_proxy=proxy)
        times[proxy] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
    res.add(Row(label="gpu-initiated", fused_time=times[False],
                baseline_time=times[True]))
    res.add(Row(label="cpu-proxy", fused_time=times[True],
                baseline_time=times[True]))
    res.extra["proxy_penalty"] = (
        f"{100 * (times[True] / times[False] - 1):.2f}% slower through "
        f"the proxy")
    return res


def test_ablation_cpu_proxy(run_figure):
    res = run_figure(run_ablation)
    t = {r.label: r.fused_time for r in res.rows}
    # Direct GPU initiation is never slower; the proxy's per-message
    # latency is mostly hidden by overlap but shows at the tail.
    assert t["gpu-initiated"] <= t["cpu-proxy"]
