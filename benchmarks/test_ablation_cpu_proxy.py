"""Ablation: GPU-initiated networking vs a CPU proxy thread (paper Fig. 5).

The paper notes GPU threads can alternatively trigger NIC communication
through a CPU proxy (e.g. MSCCL++-style).  The proxy adds a
doorbell-to-submission latency to every remote transaction; with thousands
of slice-granular messages, direct GPU initiation is the better fit for
the fused kernels — quantified by the ``ablation-cpu-proxy`` sweep
registered in ``repro.experiments``.
"""

from repro.experiments import regenerate


def test_ablation_cpu_proxy(run_figure):
    res = run_figure(regenerate, "ablation-cpu-proxy")
    t = {r.label: r.fused_time for r in res.rows}
    # Direct GPU initiation is never slower; the proxy's per-message
    # latency is mostly hidden by overlap but shows at the tail.
    assert t["gpu-initiated"] <= t["cpu-proxy"]
