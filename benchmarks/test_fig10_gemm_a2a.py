"""Fig. 10: fused GEMM + All-to-All written in the Triton extension.

Paper: 12% average (up to 20%) lower execution time; the generic GEMM
dominates the runtime, limiting the benefit.
"""

from repro.experiments import regenerate


def test_fig10_gemm_a2a(run_figure):
    res = run_figure(regenerate, "fig10")
    assert all(r.normalized < 1.0 for r in res.rows)
    assert 0.85 < res.mean_normalized < 0.99  # GEMM-dominated
