"""Extension: fused gradient All-to-All + scatter-add (backward pass).

The paper's Fig. 15 overlaps embedding work with its All-to-All in *both*
passes; the hardware prototypes cover the forward direction.  This
extension operator implements the backward fusion (receiver-driven: apply
tasks scatter-add each gradient slice as it arrives) and benchmarks it the
same way as the forward figures, through the ``ext-embedding-backward``
sweep registered in ``repro.experiments``.
"""

from repro.experiments import regenerate


def test_ext_embedding_backward(run_figure):
    res = run_figure(regenerate, "ext-embedding-backward")
    assert all(r.normalized < 1.0 for r in res.rows)
    assert res.mean_normalized < 0.95
