"""Extension: fused gradient All-to-All + scatter-add (backward pass).

The paper's Fig. 15 overlaps embedding work with its All-to-All in *both*
passes; the hardware prototypes cover the forward direction.  This
extension operator implements the backward fusion (receiver-driven: apply
tasks scatter-add each gradient slice as it arrives) and benchmarks it the
same way as the forward figures.
"""

from repro.bench.harness import FigureResult, compare
from repro.fused import (
    BaselineEmbeddingGradAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingGradAllToAll,
)


def run_backward_figure() -> FigureResult:
    res = FigureResult("Extension",
                       "fused gradient A2A + scatter-add (inter-node)")
    for batch, tables in ((256, 64), (1024, 64), (1024, 256), (4096, 64)):
        cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                                 functional=False)
        res.add(compare(
            cfg.label,
            lambda h, cfg=cfg: FusedEmbeddingGradAllToAll(h, cfg),
            lambda h, cfg=cfg: BaselineEmbeddingGradAllToAll(h, cfg),
            num_nodes=2, gpus_per_node=1))
    return res


def test_ext_embedding_backward(run_figure):
    res = run_figure(run_backward_figure)
    assert all(r.normalized < 1.0 for r in res.rows)
    assert res.mean_normalized < 0.95
