"""Table I: system setup of the simulated substrate."""

from repro.bench import table1_setup


def test_table1_setup(run_figure):
    res = run_figure(table1_setup)
    assert "MI210" in res.extra["GPU"]
    assert "80 GB/s" in res.extra["Scale-up"]
    assert "20 GB/s" in res.extra["Scale-out"]
