"""Table I: system setup of the simulated substrate."""

from repro.experiments import regenerate


def test_table1_setup(run_figure):
    res = run_figure(regenerate, "table1")
    assert "MI210" in res.extra["GPU"]
    assert "80 GB/s" in res.extra["Scale-up"]
    assert "20 GB/s" in res.extra["Scale-out"]
