"""Fig. 8: intra-node (4-GPU) fused embedding + All-to-All.

Paper: zero-copy fused kernel achieves on average 20% (up to 32%) lower
execution time than bulk-synchronous pooling kernels + RCCL blit A2A, with
less benefit at small batch sizes (small All-to-All latency).
"""

from repro.experiments import regenerate


def test_fig08_embedding_a2a_intranode(run_figure):
    res = run_figure(regenerate, "fig8")
    # Shape assertions: fused wins everywhere, by roughly the paper's factor.
    assert all(r.normalized < 1.0 for r in res.rows)
    assert 0.6 < res.mean_normalized < 0.95
    assert res.best_normalized < 0.9
