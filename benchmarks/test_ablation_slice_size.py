"""Ablation: communication slice granularity (paper §III-A).

The slice size sets the overlap granularity: small slices communicate
earlier and pipeline better, but pay the per-slice API latency, bookkeeping
flags, and NIC message-rate cost more often; large slices amortize the
overheads but delay communication and leave less to overlap.  The paper
uses 32 embedding vectors per slice for its inter-node runs; this sweep
(registered as ``ablation-slice-size`` in ``repro.experiments``) shows
that choice sitting in the flat region of the trade-off.
"""

from repro.experiments import regenerate


def test_ablation_slice_size(run_figure):
    res = run_figure(regenerate, "ablation-slice-size")
    t = {r.label: r.fused_time for r in res.rows}
    # The paper's choice (32) is within 5% of the best point of the sweep.
    best = min(t.values())
    assert t["slice=32"] <= 1.05 * best
    # Extremes are no better than the paper's choice.
    assert t["slice=8"] >= t["slice=32"] * 0.98
    assert t["slice=128"] >= t["slice=32"] * 0.98
