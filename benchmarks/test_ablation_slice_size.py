"""Ablation: communication slice granularity (paper §III-A).

The slice size sets the overlap granularity: small slices communicate
earlier and pipeline better, but pay the per-slice API latency, bookkeeping
flags, and NIC message-rate cost more often; large slices amortize the
overheads but delay communication and leave less to overlap.  The paper
uses 32 embedding vectors per slice for its inter-node runs; this sweep
shows that choice sitting in the flat region of the trade-off.
"""

from repro.bench.harness import FigureResult, Row
from repro.fused import EmbeddingA2AConfig, FusedEmbeddingAllToAll, OpHarness

SLICES = (8, 16, 32, 64, 128)


def run_sweep(batch: int = 1024, tables: int = 64) -> FigureResult:
    res = FigureResult("Ablation",
                       f"slice-size sweep, inter-node {batch}|{tables}")
    times = {}
    for sv in SLICES:
        # Occupancy pinned to the fused kernel's maximum so the sweep
        # isolates communication granularity from grid-size effects.
        cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                                 functional=False, slice_vectors=sv,
                                 occupancy_of_baseline=0.875)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        times[sv] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
    worst = max(times.values())
    for sv in SLICES:
        res.add(Row(label=f"slice={sv}", fused_time=times[sv],
                    baseline_time=worst))
    res.extra["times_us"] = {sv: round(t * 1e6, 1) for sv, t in times.items()}
    return res


def test_ablation_slice_size(run_figure):
    res = run_figure(run_sweep)
    t = {r.label: r.fused_time for r in res.rows}
    # The paper's choice (32) is within 5% of the best point of the sweep.
    best = min(t.values())
    assert t["slice=32"] <= 1.05 * best
    # Extremes are no better than the paper's choice.
    assert t["slice=8"] >= t["slice=32"] * 0.98
    assert t["slice=128"] >= t["slice=32"] * 0.98
