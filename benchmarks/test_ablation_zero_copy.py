"""Ablation: zero-copy peer stores vs staged local writes (paper §III-B).

The paper's scale-up fused kernels store results *directly* into the peer
GPU's destination buffer, eliminating the intermediate local store.  This
ablation disables only that optimization (the kernel still fuses and
overlaps) to isolate its contribution to the intra-node win.
"""

from repro.bench.harness import FigureResult, compare
from repro.fused import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
)


def run_ablation() -> FigureResult:
    res = FigureResult("Ablation", "zero-copy contribution (intra-node)")
    for batch, tables in ((1024, 64), (2048, 128)):
        for zero_copy in (True, False):
            cfg = EmbeddingA2AConfig(global_batch=batch,
                                     tables_per_gpu=tables,
                                     functional=False, zero_copy=zero_copy)
            row = compare(
                f"{batch}|{tables} zc={'on' if zero_copy else 'off'}",
                lambda h, cfg=cfg: FusedEmbeddingAllToAll(h, cfg),
                lambda h, cfg=cfg: BaselineEmbeddingAllToAll(
                    h, EmbeddingA2AConfig(global_batch=cfg.global_batch,
                                          tables_per_gpu=cfg.tables_per_gpu,
                                          functional=False)),
                num_nodes=1, gpus_per_node=4)
            res.add(row)
    return res


def test_ablation_zero_copy(run_figure):
    res = run_figure(run_ablation)
    norm = {r.label: r.normalized for r in res.rows}
    for batch, tables in ((1024, 64), (2048, 128)):
        on = norm[f"{batch}|{tables} zc=on"]
        off = norm[f"{batch}|{tables} zc=off"]
        # Zero-copy helps (strictly less time) but the fused kernel still
        # wins without it (the overlap and single launch remain).
        assert on < off
        assert off < 1.0
