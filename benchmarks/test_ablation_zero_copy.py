"""Ablation: zero-copy peer stores vs staged local writes (paper §III-B).

The paper's scale-up fused kernels store results *directly* into the peer
GPU's destination buffer, eliminating the intermediate local store.  This
ablation (registered as ``ablation-zero-copy`` in ``repro.experiments``)
disables only that optimization (the kernel still fuses and overlaps) to
isolate its contribution to the intra-node win.
"""

from repro.experiments import regenerate


def test_ablation_zero_copy(run_figure):
    res = run_figure(regenerate, "ablation-zero-copy")
    norm = {r.label: r.normalized for r in res.rows}
    for batch, tables in ((1024, 64), (2048, 128)):
        on = norm[f"{batch}|{tables} zc=on"]
        off = norm[f"{batch}|{tables} zc=off"]
        # Zero-copy helps (strictly less time) but the fused kernel still
        # wins without it (the overlap and single launch remain).
        assert on < off
        assert off < 1.0
