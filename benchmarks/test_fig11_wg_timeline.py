"""Fig. 11: profiled persistent-WG timeline (inter-node fused kernel).

Paper: non-blocking remote PUTs are issued while other WGs compute (fine-
grain overlap), mostly by the last WG of each 16-WG slice cluster, and the
remote slices are computed before the locally consumed ones.
"""

from repro.experiments import regenerate


def test_fig11_wg_timeline(run_figure):
    res = run_figure(regenerate, "fig11")
    assert res.extra["puts_issued_node0"] > 0
    # Puts start early in the kernel (comm-aware scheduling) and keep being
    # issued mid-kernel, not at the boundary.
    first = float(res.extra["first_put_at"].split("%")[0])
    last = float(res.extra["last_put_at"].split("%")[0])
    assert first < 30.0
    assert last < 100.0
    assert "#" in res.extra["timeline"]
    assert "P" in res.extra["timeline"]
