"""Table II: scale-out simulation parameters."""

from repro.experiments import regenerate


def test_table2_simsetup(run_figure):
    res = run_figure(regenerate, "table2")
    assert res.extra["Embedding dimension"] == 92
    assert res.extra["Avg pooling size"] == 70
    assert "200 Gb/s" in res.extra["Topology"]
    assert "700 ns" in res.extra["Topology"]
