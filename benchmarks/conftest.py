"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs its figure exactly once (`pedantic`, one round): the
measured quantity is simulated execution time, which is deterministic, so
statistical repetition would only re-run identical work.  The rendered
table is printed (visible with ``-s`` or in captured output) and the
aggregates land in ``benchmark.extra_info`` / the JSON report.
"""

import pytest


@pytest.fixture
def run_figure(benchmark):
    """Run a figure function under pytest-benchmark and report it."""

    def _run(fig_fn, *args, **kwargs):
        result = benchmark.pedantic(fig_fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        benchmark.extra_info.update(result.summary()
                                    if result.rows else result.extra)
        print()
        print(result.render())
        return result

    return _run
