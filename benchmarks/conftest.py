"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs its figure exactly once (`pedantic`, one round): the
measured quantity is simulated execution time, which is deterministic, so
statistical repetition would only re-run identical work.  The rendered
table is printed (visible with ``-s`` or in captured output) and the
aggregates land in ``benchmark.extra_info`` / the JSON report.

The figure/ablation tests execute through the experiment orchestrator
(``repro.experiments.regenerate``) — the same sweeps that back
``python -m repro``.  By default every scenario is simulated fresh (a
test run must measure the current code); set ``REPRO_CACHE_DIR`` to
reuse the content-addressed store and ``REPRO_WORKERS=N`` to shard
uncached scenarios across processes.
"""

import pytest

#: Benchmark files whose tests get the ``slow`` marker: the heaviest figure
#: regenerations.  ``pytest -m "not slow"`` then gives a quick inner-loop
#: run; the full suite (slow included) remains the tier-1 gate.
SLOW_FILES = frozenset({
    "test_fig08_embedding_a2a_intranode.py",
    "test_fig10_gemm_a2a.py",
    "test_fig12_embedding_a2a_internode.py",
    "test_fig15_scaleout.py",
    "test_ablation_zero_copy.py",
})


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.path is not None and item.path.name in SLOW_FILES:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def run_figure(benchmark):
    """Run a figure function under pytest-benchmark and report it."""

    def _run(fig_fn, *args, **kwargs):
        result = benchmark.pedantic(fig_fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        benchmark.extra_info.update(result.summary()
                                    if result.rows else result.extra)
        print()
        print(result.render())
        return result

    return _run
