"""Fig. 13: impact of WG occupancy on fused-kernel execution time.

Paper: raising occupancy from 25% to 75% (of the baseline kernel's) cuts
execution time by 46%; pushing on to the fused kernel's 87.5% maximum
*increases* time by 25% — memory contention outweighing parallelism.
"""

from repro.experiments import regenerate


def test_fig13_occupancy(run_figure):
    res = run_figure(regenerate, "fig13")
    t = {r.label: r.fused_time for r in res.rows}
    # U-shape: improves to 75%, degrades at 87.5%.
    assert t["75.0%"] < t["25.0%"]
    assert t["87.5%"] > t["75.0%"]
    reduction = 1 - t["75.0%"] / t["25.0%"]
    increase = t["87.5%"] / t["75.0%"] - 1
    assert 0.30 < reduction < 0.55   # paper: 46%
    assert 0.10 < increase < 0.35    # paper: 25%
