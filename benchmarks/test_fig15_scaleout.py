"""Fig. 15: 128-node DLRM training pass (ASTRA-style simulation).

Paper: fusing embedding + All-to-All in both forward and backward passes
hides most of the embedding operations, reducing end-to-end training time
by ~21% on 128 nodes.
"""

from repro.experiments import regenerate


def test_fig15_scaleout(run_figure):
    res = run_figure(regenerate, "fig15")
    assert all(r.normalized < 1.0 for r in res.rows)
    r128 = {r.label: r.normalized for r in res.rows}["128 nodes"]
    assert 0.72 < r128 < 0.86  # paper: 0.79 (21% reduction)
