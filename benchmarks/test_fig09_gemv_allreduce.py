"""Fig. 9: fused GEMV + AllReduce (scale-up, zero-copy).

Paper: on average 13% (up to 22%) lower execution time; the benefit shrinks
for the largest output vectors (M = 64k) as fabric-link contention grows
and the GEMV dominates.
"""

from repro.experiments import regenerate


def test_fig09_gemv_allreduce(run_figure):
    res = run_figure(regenerate, "fig9")
    assert all(r.normalized < 1.0 for r in res.rows)
    assert 0.75 < res.mean_normalized < 0.95
    # Crossover shape: 64k configs benefit least.
    small = [r.normalized for r in res.rows if r.label.startswith("8k")]
    large = [r.normalized for r in res.rows if r.label.startswith("64k")]
    assert min(small) < min(large)
    assert max(small) < max(large)
