"""Ablation: end-to-end cost of communication-oblivious scheduling.

Fig. 14 reports per-node *skew*; this ablation (registered as
``ablation-scheduling`` in ``repro.experiments``) reports the end-to-end
execution-time cost of scheduling local slices first (remote transfers
start late and their tail is exposed at the epilogue).
"""

from repro.experiments import regenerate


def test_ablation_scheduling(run_figure):
    res = run_figure(regenerate, "ablation-scheduling")
    # Comm-aware never loses end-to-end (fused=aware, baseline=oblivious).
    for r in res.rows:
        assert r.normalized <= 1.0
