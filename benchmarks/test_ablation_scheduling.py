"""Ablation: end-to-end cost of communication-oblivious scheduling.

Fig. 14 reports per-node *skew*; this ablation reports the end-to-end
execution-time cost of scheduling local slices first (remote transfers
start late and their tail is exposed at the epilogue).
"""

from repro.bench.harness import FigureResult, Row
from repro.fused import EmbeddingA2AConfig, FusedEmbeddingAllToAll, OpHarness


def run_ablation() -> FigureResult:
    res = FigureResult("Ablation", "scheduling policy, end-to-end time")
    for batch, tables in ((1024, 64), (2048, 64)):
        times = {}
        for sched in ("comm_aware", "oblivious"):
            cfg = EmbeddingA2AConfig(global_batch=batch,
                                     tables_per_gpu=tables,
                                     functional=False, scheduler=sched)
            h = OpHarness(num_nodes=2, gpus_per_node=1)
            times[sched] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
        res.add(Row(label=f"{batch}|{tables}",
                    fused_time=times["comm_aware"],
                    baseline_time=times["oblivious"]))
    return res


def test_ablation_scheduling(run_figure):
    res = run_figure(run_ablation)
    # Comm-aware never loses end-to-end (fused=aware, baseline=oblivious).
    for r in res.rows:
        assert r.normalized <= 1.0
