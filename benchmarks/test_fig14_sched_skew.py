"""Fig. 14: communication-aware vs oblivious WG scheduling.

Paper: oblivious scheduling leaves ~7% average completion skew between the
two nodes (node 0 computes its local slices first, delaying node 1's
epilogue); communication-aware scheduling reduces the skew to ~1%.
"""

from repro.experiments import regenerate


def test_fig14_sched_skew(run_figure):
    res = run_figure(regenerate, "fig14")
    skews = res.extra["skews"]
    avg_aware = sum(skews["comm_aware"]) / len(skews["comm_aware"])
    avg_obliv = sum(skews["oblivious"]) / len(skews["oblivious"])
    assert avg_aware < avg_obliv
    assert avg_aware < 0.04          # paper: ~1%
    assert avg_obliv > 2 * avg_aware  # paper: ~6 points apart
