"""Host-performance microbenchmarks for the simulation core.

Unlike the figure benchmarks (which measure deterministic *simulated* time),
these measure *host* wall-clock: raw engine event throughput and
persistent-kernel workgroups/second, with the run-length fast path on and
off.  Run with ``REPRO_WRITE_BENCH=1`` to refresh ``BENCH_engine.json`` at
the repo root (together with a representative figure regeneration), so the
host-performance trajectory is tracked PR over PR from one canonical
machine; a plain test run only asserts and prints.
"""

import os
import pathlib

from repro.bench.figures import fig9_gemv_allreduce
from repro.bench.perf import time_call, write_bench_report
from repro.fused.base import baseline_kernel_resources
from repro.hw.gpu import Gpu, WgCost
from repro.hw.platform import get_platform
from repro.kernels import PersistentKernel, make_uniform_tasks
from repro.sim import Simulator

#: Hardware platform the engine microbenchmarks model (recorded in
#: BENCH_engine.json so records stay comparable across platform changes).
BENCH_PLATFORM = get_platform("mi210")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Events pumped through the raw engine throughput measurement.
N_EVENTS = 200_000
#: Logical WGs in the persistent-kernel measurement.
N_TASKS = 100_000
#: Best-of-N repetitions per wall-clock measurement: host timing is noisy
#: (scheduling jitter, cache cold-starts), and for deterministic work the
#: minimum is the least-noisy estimator, so BENCH_engine.json numbers are
#: comparable run-to-run.
BEST_OF = 3
#: Reduced Fig. 9 grid for the representative figure regeneration.
FIG9_SMALL_GRID = ((8192, 8192), (16384, 16384), (32768, 16384))
#: Scenarios evaluated per repetition in the analytic-throughput
#: measurement (distinct parameter points, as a sweep would produce).
N_ANALYTIC = 512
#: Scenario evaluations per repetition in the collective-algorithm
#: throughput measurement (cycling the schedule menu, both collectives).
N_COLLECTIVE = 600
#: Scenario rows per repetition in the vectorized mega-batch measurement.
N_BATCH = 250_000
#: The DES scenario the engine-speedup ratio is measured against.
RATIO_SCENARIO = dict(m=8192, n_per_gpu=2048, world=4)
#: Trace events exported per repetition in the Chrome-export measurement.
N_TRACE_EVENTS = 100_000


def _engine_events_per_sec() -> float:
    def proc(sim):
        for _ in range(N_EVENTS):
            yield sim.timeout(1.0)

    def setup():
        sim = Simulator()
        sim.process(proc(sim))
        return sim

    _, wall = time_call(lambda sim: sim.run(), repeats=BEST_OF, setup=setup)
    return N_EVENTS / wall


def _kernel_wgs_per_sec() -> float:
    """Launch one hook-free uniform kernel of ``N_TASKS`` logical WGs.

    The kernel consumes its task list, so each best-of-N repetition
    rebuilds the simulator untimed (``time_call``'s ``setup`` hook) and
    only the event-loop run is measured.
    """
    def setup():
        sim = Simulator()
        gpu = Gpu(sim, BENCH_PLATFORM.gpu, gpu_id=0)
        tasks = make_uniform_tasks(N_TASKS, WgCost(bytes=4096.0))
        kern = PersistentKernel(gpu, baseline_kernel_resources(gpu.spec),
                                tasks)
        kern.launch()
        return sim

    _, wall = time_call(lambda sim: sim.run(), repeats=BEST_OF, setup=setup)
    return N_TASKS / wall


def _analytic_scenarios_per_sec() -> float:
    """Evaluate ``N_ANALYTIC`` distinct GEMV+AllReduce scenarios through
    the closed-form backend (the second evaluation engine behind every
    sweep); returns scenarios per wall-second."""
    from repro.analytic import predict_gemv_allreduce

    def run_grid():
        for i in range(N_ANALYTIC):
            predict_gemv_allreduce(world=4, m=8192 + 64 * (i % 128),
                                   n_per_gpu=2048 + 16 * (i % 64))

    _, wall = time_call(run_grid, repeats=BEST_OF)
    return N_ANALYTIC / wall


def _analytic_batch_scenarios_per_sec() -> float:
    """Evaluate ``N_BATCH`` distinct embedding+A2A scenarios through the
    vectorized mega-batch engine (column construction included); the
    million-point design-space grids ride on this path."""
    import numpy as np
    from repro.analytic.batch import ScenarioBatch

    rng = np.random.default_rng(20240807)
    cols = {
        "global_batch": 512 * rng.integers(1, 19, N_BATCH),
        "tables_per_gpu": 8 * rng.integers(1, 33, N_BATCH),
        "slice_vectors": 2 ** rng.integers(3, 7, N_BATCH),
    }

    def run_batch():
        batch = ScenarioBatch.from_columns(
            "embedding_a2a_pair", cols,
            structural={"num_nodes": 2, "gpus_per_node": 1,
                        "platform": BENCH_PLATFORM.name})
        batch.evaluate()

    _, wall = time_call(run_batch, repeats=BEST_OF)
    return N_BATCH / wall


def _collective_algo_scenarios_per_sec() -> float:
    """Evaluate the collective-algorithm library's closed forms across
    the schedule menu (the `algo` sweep axis); scenarios per second."""
    from repro.analytic import CommModel

    shapes = ((1, 4), (2, 1), (2, 2), (2, 4))
    ar_algos = ("direct", "ring", "tree", "hier")
    a2a_algos = ("flat", "pairwise", "hier")

    def run_grid():
        models = [CommModel("mi210", num_nodes=n, gpus_per_node=g)
                  for n, g in shapes]
        for i in range(N_COLLECTIVE):
            cm = models[i % len(models)]
            n_elems = 4096 + 512 * (i % 64)
            cm.allreduce_time(float(2 * n_elems), n_elems, itemsize=2,
                              algo=ar_algos[i % len(ar_algos)])
            cm.alltoall_time(float(1024 + 256 * (i % 32)),
                             algo=a2a_algos[i % len(a2a_algos)])

    _, wall = time_call(run_grid, repeats=BEST_OF)
    return N_COLLECTIVE / wall


def _des_scenarios_per_sec() -> float:
    """The same operator pair under the DES, for the engine-speedup ratio."""
    from repro.experiments import run_scenario, scenario

    spec = scenario("gemv_allreduce_pair", **RATIO_SCENARIO)
    _, wall = time_call(lambda: run_scenario(spec), repeats=BEST_OF)
    return 1.0 / wall


def _trace_export_events_per_sec() -> float:
    """Chrome-export throughput over a synthetic Fig.-11-shaped trace
    (WG spans, PUT instants, kernel span) of ``N_TRACE_EVENTS`` events."""
    from repro.obs.chrome import chrome_trace_json
    from repro.sim import TraceRecorder

    tr = TraceRecorder()
    tr.record(0.0, "kernel_launch", "gpu0", kernel="bench")
    t = 0.0
    # 4 events per iteration: wg_start / put_issue / wg_end per WG.
    for i in range((N_TRACE_EVENTS - 2) // 4):
        actor = f"gpu0/wg{i % 64}"
        tr.record(t, "wg_start", actor, task=i)
        tr.record(t + 1e-7, "put_issue", actor, nbytes=4096, dest=1)
        tr.record(t + 2e-7, "wg_end", actor, task=i)
        tr.record(t + 2e-7, "flag_set", f"gpu1/wg{i % 64}", slice=i)
        t += 2e-7
    tr.record(t, "kernel_end", "gpu0", kernel="bench")

    n = len(tr)
    _, wall = time_call(lambda: chrome_trace_json(tr), repeats=BEST_OF)
    return n / wall


def _metrics_on_over_off_ratio() -> float:
    """DES scenario throughput with the metrics registry live over the
    default NULL_METRICS path (1.0 = free; the instrumented run loop and
    counter flushes cost a few percent)."""
    from repro.obs.metrics import enable_metrics, reset_metrics

    off = _des_scenarios_per_sec()
    enable_metrics()
    try:
        on = _des_scenarios_per_sec()
    finally:
        reset_metrics()
    return on / off


def test_analytic_backend_throughput():
    """The analytic engine must stay orders of magnitude over the DES.

    The DSE contract (1,000+-scenario grids in seconds) needs roughly
    1,000 scenarios/sec; the ratio documents how far out of budget the
    equivalent DES grid is.
    """
    analytic = _analytic_scenarios_per_sec()
    des = _des_scenarios_per_sec()
    assert analytic > 500, (
        f"analytic backend collapsed: {analytic:.0f} scenarios/s")
    assert analytic / des > 50, (
        f"analytic/DES speedup collapsed: {analytic / des:.0f}x")


def test_analytic_batch_throughput():
    """The mega-batch engine's headline contract: at least a million
    scenarios per wall-second through the columnar path (the scalar
    analytic backend manages tens of thousands)."""
    per_sec = _analytic_batch_scenarios_per_sec()
    assert per_sec > 1_000_000, (
        f"mega-batch engine below contract: {per_sec:,.0f} scenarios/s")


def test_collective_algo_throughput():
    """The algorithm library's closed forms must stay sweep-grade fast
    (the dse algo axis multiplies every grid by the schedule menu)."""
    per_sec = _collective_algo_scenarios_per_sec()
    assert per_sec > 1000, (
        f"collective-algorithm evaluation collapsed: {per_sec:.0f}/s")


def test_engine_event_throughput():
    eps = _engine_events_per_sec()
    # Generous floor: even a slow CI box sustains far more than this.
    assert eps > 50_000, f"engine throughput collapsed: {eps:.0f} events/s"


def test_trace_export_throughput():
    """The Chrome exporter must stay interactive on real traces (the
    Fig. 11 scenario captures tens of thousands of events)."""
    eps = _trace_export_events_per_sec()
    assert eps > 10_000, f"trace export collapsed: {eps:.0f} events/s"


def test_metrics_overhead_bounded():
    """A live metrics registry may cost a little DES throughput, but the
    instrumented run loop must stay within 25% of the default path
    (host-noise-tolerant floor; the committed report tracks the ratio)."""
    ratio = _metrics_on_over_off_ratio()
    assert ratio > 0.75, f"metrics-enabled DES throughput ratio {ratio:.2f}"


def test_fastpath_speedup_and_report(monkeypatch):
    """Fast path >= 5x WGs/sec on a hook-free uniform kernel; emit report."""
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")
    fast = _kernel_wgs_per_sec()
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    slow = _kernel_wgs_per_sec()
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")

    speedup = fast / slow
    assert speedup >= 5.0, (
        f"fast path only {speedup:.1f}x over per-task stepping "
        f"({fast:.0f} vs {slow:.0f} WGs/s)")

    fig9, fig9_wall = time_call(
        lambda: fig9_gemv_allreduce(grid=FIG9_SMALL_GRID))
    analytic = _analytic_scenarios_per_sec()
    des = _des_scenarios_per_sec()
    collective = _collective_algo_scenarios_per_sec()
    batch = _analytic_batch_scenarios_per_sec()
    payload = {
        # "platform" is the host OS string (write_bench_report);
        # "hw_platform" names the simulated hardware catalog entry.
        "hw_platform": BENCH_PLATFORM.name,
        "engine_events_per_sec": round(_engine_events_per_sec()),
        "kernel_wgs_per_sec_fastpath": round(fast),
        "kernel_wgs_per_sec_slowpath": round(slow),
        "fastpath_speedup": round(speedup, 1),
        "analytic_scenarios_per_sec": round(analytic),
        "analytic_batch_scenarios_per_sec": round(batch),
        "des_scenarios_per_sec": round(des, 2),
        "analytic_over_des_speedup": round(analytic / des),
        "collective_algos_scenarios_per_sec": round(collective),
        "trace_export_events_per_sec": round(_trace_export_events_per_sec()),
        "metrics_on_over_off_ratio": round(_metrics_on_over_off_ratio(), 3),
        "fig9_reduced_grid_wall_sec": round(fig9_wall, 3),
        "fig9_reduced_grid_mean_normalized": round(fig9.mean_normalized, 4),
    }
    # Wall-clock numbers are machine-dependent; only refresh the committed
    # report when explicitly asked, so a routine test run leaves a clean
    # working tree.
    if os.environ.get("REPRO_WRITE_BENCH"):
        payload = write_bench_report(REPO_ROOT / "BENCH_engine.json", payload)
    print()
    for key in sorted(payload):
        print(f"{key}: {payload[key]}")
