"""Fig. 12: inter-node fused embedding + All-to-All (2 nodes over IB).

Paper: 31% average (up to 58%) lower execution time; the smallest global
batches benefit most because per-table baseline kernels leave the GPU
underutilized while the fused kernel processes all tables in one kernel.
"""

from repro.experiments import regenerate


def test_fig12_embedding_a2a_internode(run_figure):
    res = run_figure(regenerate, "fig12")
    assert all(r.normalized < 1.0 for r in res.rows)
    assert 0.4 < res.mean_normalized < 0.8
    # Smallest batch gets the biggest win (the paper's >full-overlap effect).
    by_batch = {r.label: r.normalized for r in res.rows}
    assert by_batch["256|256"] < by_batch["4096|256"]
    assert res.best_normalized < 0.55
